//! The `Session` API — the single front door to the GM pipeline.
//!
//! A [`Session`] owns a **versioned graph store** (base CSR segment + delta
//! overlay), its BFL reachability index, and an LRU cache of built RIGs
//! (the per-query "plans" of this engine). Queries enter as HPQL text
//! (`MATCH (a:Author)->(p:Paper)=>(q:Paper)`) or as hand-built
//! [`PatternQuery`] values, are parsed / validated / transitively reduced /
//! canonicalized **once** by [`Session::prepare`], and then execute any
//! number of times through the [`Run`] builder:
//!
//! ```
//! use rig_core::Session;
//! use rig_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_named_node("Author");
//! let p = b.add_named_node("Paper");
//! let q = b.add_named_node("Paper");
//! b.add_edge(a, p);
//! b.add_edge(p, q);
//! let session = Session::new(b.build());
//!
//! let prepared = session.prepare("MATCH (a:Author)->(p:Paper)=>(q:Paper)").unwrap();
//! assert_eq!(prepared.run().count().result.count, 1);
//! // the second execution reuses the cached RIG
//! assert_eq!(prepared.run().count().result.count, 1);
//! assert_eq!(session.cache_stats().hits, 1);
//! ```
//!
//! ## Dynamic graphs
//!
//! The graph is **mutable between runs**: stage node/edge changes on a
//! [`GraphTxn`] and publish them with [`Session::commit`]. Every run
//! executes against one immutable [`Snapshot`] (O(1) to take), so
//! in-flight sequential and morsel-parallel enumerations keep a
//! consistent view while writers proceed; the next run simply picks up
//! the newest snapshot.
//!
//! ```
//! use rig_core::Session;
//! use rig_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_named_node("Author");
//! let p = b.add_named_node("Paper");
//! b.add_edge(a, p);
//! let session = Session::new(b.build());
//! let papers = session.prepare("MATCH (a:Author)->(p:Paper)").unwrap();
//! assert_eq!(papers.run().count().result.count, 1);
//!
//! let mut txn = session.begin();
//! let p2 = txn.add_named_node("Paper");
//! txn.add_edge(0, p2);
//! session.commit(txn).unwrap();
//! assert_eq!(papers.run().count().result.count, 2);
//! ```
//!
//! Commits invalidate cached plans **by label set**, not wholesale: a
//! plan is dropped only when the commit touched one of the labels its
//! reduced query reads, or when it contains reachability edges and the
//! commit changed any edge (paths traverse arbitrary labels). Plans over
//! disjoint labels stay hot — [`CacheStats::invalidated`] counts the
//! drops. Once the delta grows past the [`CompactionPolicy`] threshold,
//! the store compacts LSM-style: the overlay is merged into a fresh
//! id-stable base segment and the BFL index is rebuilt.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use rig_analyze::{Analyzer, AnalyzerConfig, Report};
use rig_graph::{
    CommitImpact, DataGraph, DeltaOverlay, GraphView, Label, LabelPairCounts, MutationOp, NodeId,
    Snapshot,
};
use rig_index::{build_rig, Rig, RigOptions, RigStats};
use rig_mjoin::{compute_order, EnumOptions, EnumResult, ParOptions, ResultSink, SearchOrder};
use rig_query::{
    closest_label, hpql, parse_hpql, transitive_reduction, EdgeKind, PatternQuery, QNode,
};
use rig_reach::{BflIndex, Reachability, SnapshotReach};
use rig_shard::{run_sharded, Partitioner, ShardOptions, ShardedPlan, ShardedStore};
use rig_sim::{SimContext, SimOptions};
use rig_storage::{
    DurableStore, FsBackend, RecoveryReport, StorageBackend, StorageError, StoreOptions,
};

use crate::{Error, GmConfig, GmMetrics, QueryOutcome};

/// Default number of cached RIGs per session.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

// ---------------------------------------------------------------------------
// plan cache
// ---------------------------------------------------------------------------

#[derive(PartialEq, Eq)]
struct CacheKey {
    labels: Vec<Label>,
    edges: Vec<rig_query::PatternEdge>,
    opts: RigOptions,
}

impl CacheKey {
    fn new(query: &PatternQuery, rig_opts: &RigOptions) -> CacheKey {
        // build_threads is normalized out: the expansion phase is
        // bit-identical at every thread count (see docs/parallel.md), so
        // plans are shared across it. Deadlines are normalized out too:
        // only fully-built plans are ever cached, and a cached plan
        // serves runs with any budget.
        let opts = RigOptions {
            build_threads: 0,
            deadline: None,
            sim: SimOptions { deadline: None, ..rig_opts.sim },
            ..*rig_opts
        };
        CacheKey { labels: query.labels().to_vec(), edges: query.edges().to_vec(), opts }
    }
}

struct CacheEntry {
    key: CacheKey,
    rig: Arc<Rig>,
    /// 64-bit label-set fingerprint of the reduced query (bit `l mod 64`
    /// per label) — the cheap pre-check of the commit invalidation sweep.
    mask: u64,
    /// True when the reduced query has reachability edges: such plans
    /// depend on paths through nodes of *any* label, so every structural
    /// (edge-mutating) commit invalidates them.
    has_reach: bool,
}

/// Tiny exact-LRU over a vec: entries ordered most- to least-recently
/// used. Capacities are small (default 64), so the linear scan is cheaper
/// than a linked-hash structure and keeps the code dependency-free.
struct PlanCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    evictions: u64,
}

impl PlanCache {
    fn get(&mut self, key: &CacheKey) -> Option<Arc<Rig>> {
        let pos = self.entries.iter().position(|e| e.key == *key)?;
        let entry = self.entries.remove(pos);
        let rig = Arc::clone(&entry.rig);
        self.entries.insert(0, entry);
        Some(rig)
    }

    fn insert(&mut self, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|e| e.key == entry.key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, entry);
        while self.entries.len() > self.capacity {
            self.entries.pop();
            self.evictions += 1;
        }
    }
}

/// Plan-cache counters (see [`Session::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Executions served from a cached RIG.
    pub hits: u64,
    /// Cache lookups that missed and built their RIG (`no_cache` bypass
    /// runs count neither here nor as hits).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Plans dropped by commit label-set invalidation (witnesses that a
    /// commit hit a plan's labels — or its reachability edges).
    pub invalidated: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Maximum resident plans.
    pub capacity: usize,
}

// ---------------------------------------------------------------------------
// sharded execution state
// ---------------------------------------------------------------------------

/// One cached sharded plan: the canonical query key plus the per-shard
/// store versions it was built against (a mismatch on shard `s` means
/// exactly shard `s`'s RIG block is stale).
struct ShardPlanEntry {
    key: CacheKey,
    strategy: SearchOrder,
    plan: Arc<ShardedPlan>,
    built_versions: Vec<u64>,
    has_reach: bool,
}

/// Everything the session tracks when sharded execution is enabled: the
/// partitioned store, two per-shard version vectors (current vs. the
/// versions the store was built at — the diff is the refresh set), the
/// sharded-plan cache, and per-shard counters for `/metrics`.
struct ShardingState {
    opts: ShardOptions,
    store: Option<Arc<ShardedStore>>,
    /// Per-shard versions the resident `store` was built/refreshed at.
    store_versions: Vec<u64>,
    /// Current per-shard versions: a commit bumps exactly the owner
    /// shards of its touched edge endpoints (node/label commits drop the
    /// store wholesale — ownership itself may change).
    shard_versions: Vec<u64>,
    plans: Vec<ShardPlanEntry>,
    /// Per-shard RIG-block (re)builds since sharding was enabled.
    rig_builds: Vec<u64>,
    /// Per-shard scatter-gather tasks processed.
    tasks: Vec<u64>,
    /// Per-shard matches emitted.
    emitted: Vec<u64>,
}

/// Resident sharded plans kept per session (sharded plans are much
/// larger than single-graph RIGs — one block pair per shard — so the cap
/// is deliberately tighter than [`DEFAULT_CACHE_CAPACITY`]).
const SHARD_PLAN_CAPACITY: usize = 16;

/// Commits the shard log absorbs between sharded runs before giving up
/// and forcing a wholesale store rebuild (a session that commits heavily
/// without running sharded queries should not hoard its op history).
const SHARD_LOG_CAP: usize = 4096;

impl ShardingState {
    fn new(opts: ShardOptions) -> ShardingState {
        let ns = opts.effective_shards();
        ShardingState {
            opts,
            store: None,
            store_versions: vec![0; ns],
            shard_versions: vec![0; ns],
            plans: Vec::new(),
            rig_builds: vec![0; ns],
            tasks: vec![0; ns],
            emitted: vec![0; ns],
        }
    }

    /// Drops the partitioned store and every sharded plan (configuration
    /// and counters survive) — the reset path for node/label commits and
    /// whole-graph swaps, where even the owner function may change.
    fn reset(&mut self) {
        self.store = None;
        self.plans.clear();
        for v in &mut self.shard_versions {
            *v += 1;
        }
        self.store_versions.clone_from(&self.shard_versions);
    }
}

/// Per-shard size and activity counters (see [`Session::sharding_stats`]).
#[derive(Debug, Clone, Default)]
pub struct ShardCounters {
    /// Nodes the shard owns (0 until the first sharded run builds the
    /// store).
    pub owned_nodes: u64,
    /// Edges with both endpoints owned.
    pub internal_edges: u64,
    /// Cut edges leaving the shard.
    pub cut_out: u64,
    /// Cut edges entering the shard.
    pub cut_in: u64,
    /// RIG block (re)builds for this shard.
    pub rig_builds: u64,
    /// Scatter-gather tasks this shard's worker processed.
    pub tasks: u64,
    /// Matches this shard emitted.
    pub emitted: u64,
}

/// Sharded-execution statistics (see [`Session::sharding_stats`]).
#[derive(Debug, Clone)]
pub struct ShardingStats {
    /// Configured shard count.
    pub shards: usize,
    /// The owner function in use.
    pub partitioner: Partitioner,
    /// Total edges crossing shard boundaries (0 until the store builds).
    pub cut_edges: u64,
    /// Per-shard counters, indexed by shard id.
    pub per_shard: Vec<ShardCounters>,
}

// ---------------------------------------------------------------------------
// compaction policy & store statistics
// ---------------------------------------------------------------------------

/// When the delta overlay is merged into a fresh base segment.
///
/// Compaction triggers at the end of a commit once the overlay has
/// absorbed at least `min_ops` mutations **and** at least
/// `ratio * (|V| + |E|)` of the current base segment's size. Both knobs
/// guard the two failure modes: tiny graphs should not recompact on every
/// commit, and huge graphs should not let the (hash-probed) overlay grow
/// into a significant fraction of reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Minimum delta operations before compaction is considered.
    pub min_ops: u64,
    /// Delta operations as a fraction of base size (nodes + edges).
    pub ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { min_ops: 4096, ratio: 0.25 }
    }
}

impl CompactionPolicy {
    /// Never compact automatically ([`Session::compact`] still works).
    pub const fn disabled() -> CompactionPolicy {
        CompactionPolicy { min_ops: u64::MAX, ratio: f64::INFINITY }
    }

    fn due(&self, delta_ops: u64, base_size: u64) -> bool {
        delta_ops >= self.min_ops && (delta_ops as f64) >= self.ratio * base_size as f64
    }
}

/// Graph-store statistics (see [`Session::store_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Monotone store version: bumped by every commit and `replace_graph`.
    pub version: u64,
    /// Commits applied since the session opened.
    pub commits: u64,
    /// LSM compactions run (automatic + manual).
    pub compactions: u64,
    /// Mutations currently resident in the delta overlay.
    pub delta_ops: u64,
    /// Base segment size: node slots.
    pub base_nodes: usize,
    /// Base segment size: edges.
    pub base_edges: usize,
    /// Live nodes under the current snapshot.
    pub live_nodes: usize,
    /// Edges under the current snapshot.
    pub edges: usize,
    /// WAL flushes that failed (or found the store mutex poisoned) —
    /// including the best-effort final flush in `Drop`, so a server's
    /// /metrics surface can witness a failed shutdown flush instead of it
    /// vanishing into a swallowed error. Always 0 for in-memory sessions.
    pub wal_flush_failures: u64,
}

/// What one [`Session::commit`] did.
#[derive(Debug, Clone)]
pub struct CommitSummary {
    /// Store version the commit published.
    pub version: u64,
    pub nodes_added: u64,
    pub nodes_removed: u64,
    pub edges_added: u64,
    pub edges_removed: u64,
    /// Labels whose membership or incident adjacency changed.
    pub touched_labels: Vec<Label>,
    /// True when any edge changed (see [`CacheStats::invalidated`] rules).
    pub structural: bool,
    /// Cached plans dropped by the label-aware invalidation sweep.
    pub plans_invalidated: u64,
    /// Cached plans that survived the sweep.
    pub plans_retained: u64,
    /// True when this commit tripped the compaction threshold.
    pub compacted: bool,
}

// ---------------------------------------------------------------------------
// transactions
// ---------------------------------------------------------------------------

/// A staged batch of graph mutations. Create with [`Session::begin`],
/// stage changes, publish atomically with [`Session::commit`] —
/// all-or-nothing: if any op fails validation the graph is untouched.
///
/// Node ids handed out by [`GraphTxn::add_node`] are *provisional*: they
/// become real iff the commit succeeds. Commits are optimistic — a txn
/// begun at store version `v` only commits against version `v`, so two
/// racing writers cannot interleave half-applied batches.
#[derive(Debug)]
pub struct GraphTxn {
    ops: Vec<MutationOp>,
    next_node: NodeId,
    start_version: u64,
}

impl GraphTxn {
    /// Stages a node addition; returns the id the node will have.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        self.stage_node(MutationOp::AddNode(rig_graph::LabelSpec::Id(label)))
    }

    /// Stages a node addition labeled by name (interned on first use).
    pub fn add_named_node(&mut self, name: &str) -> NodeId {
        self.stage_node(MutationOp::AddNode(rig_graph::LabelSpec::Named(name.to_string())))
    }

    fn stage_node(&mut self, op: MutationOp) -> NodeId {
        self.ops.push(op);
        let id = self.next_node;
        self.next_node += 1;
        id
    }

    /// Stages a node removal (tombstones the id, drops incident edges).
    pub fn remove_node(&mut self, v: NodeId) {
        self.ops.push(MutationOp::RemoveNode(v));
    }

    /// Stages an edge addition (idempotent if the edge exists).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.ops.push(MutationOp::AddEdge(u, v));
    }

    /// Stages an edge removal (the edge must exist at commit time).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        self.ops.push(MutationOp::RemoveEdge(u, v));
    }

    /// Stages a pre-parsed [`MutationOp`] (the CLI mutation-script path).
    pub fn push(&mut self, op: MutationOp) {
        if matches!(op, MutationOp::AddNode(_)) {
            self.next_node += 1;
        }
        self.ops.push(op);
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

// ---------------------------------------------------------------------------
// session
// ---------------------------------------------------------------------------

struct State {
    snapshot: Arc<Snapshot>,
    bfl: Arc<BflIndex>,
    version: u64,
    commits: u64,
    compactions: u64,
    cache: PlanCache,
    /// Label-pair edge-count matrix for the snapshot at `.0` (a store
    /// version), built lazily on the first lint/analysis run and reused
    /// until a commit changes the graph. Compaction keeps it: it changes
    /// representation, never counts.
    pairs: Option<(u64, Arc<LabelPairCounts>)>,
    /// Mutation ops committed since the last sharded run, appended under
    /// the state lock (so the log and the published snapshot always
    /// agree) and drained by the next sharded run to route staleness to
    /// owner shards. Only fed while sharding is enabled; bounded by
    /// [`SHARD_LOG_CAP`] — overflow trips the flag below instead.
    shard_log: Vec<MutationOp>,
    /// The shard log overflowed (or was bypassed): the next sharded run
    /// must rebuild the partitioned store wholesale.
    shard_log_overflow: bool,
}

/// A query session over one data graph: owns the versioned graph store,
/// its reachability index, and the RIG plan cache. See the
/// [module docs](self) for a tour. `Session` is `Sync`: runs on other
/// threads keep executing against their snapshots while a writer commits.
pub struct Session {
    state: Mutex<State>,
    config: GmConfig,
    compaction: CompactionPolicy,
    /// Durable companion (WAL + snapshot segments) when the session was
    /// opened on a store directory; `None` for in-memory sessions. Lock
    /// order is state → store (the store lock never takes the state lock).
    store: Option<Mutex<DurableStore>>,
    /// What recovery did, when this session came from [`Session::open`].
    recovery: Option<RecoveryReport>,
    /// Sharded-execution state when [`Session::set_sharding`] enabled it;
    /// `None` routes every run through the single-graph engines. Lock
    /// order: a holder of this lock may take `state` briefly (to snapshot
    /// the graph); `commit` takes it only *after* releasing `state` —
    /// never hold `state` and then take `sharding`.
    sharding: Mutex<Option<ShardingState>>,
    /// Cheap mirror of `sharding.is_some()`, readable under the state
    /// lock (where the sharding lock must not be taken): gates the
    /// shard-log feed in [`Session::commit`].
    sharding_on: std::sync::atomic::AtomicBool,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    wal_flush_failures: AtomicU64,
}

/// Locks the durable store, mapping a poisoned mutex (a writer panicked
/// mid-operation) to a typed [`StorageError::Poisoned`] instead of
/// propagating the panic — a server must degrade a poisoned store into an
/// error response, never abort a worker.
fn lock_store(store: &Mutex<DurableStore>) -> Result<MutexGuard<'_, DurableStore>, Error> {
    store.lock().map_err(|_| {
        Error::Storage(StorageError::Poisoned {
            detail: "store mutex poisoned by a panicked writer".to_string(),
        })
    })
}

impl Session {
    /// Locks the session state, recovering from a poisoned mutex. Every
    /// critical section over [`State`] is short, allocation-light and —
    /// under this crate's unwrap/expect/panic lints — panic-free, so a
    /// poison can only come from an allocator abort mid-update; the
    /// published `snapshot`/`bfl` Arcs are swapped atomically and stay
    /// coherent, and turning one panicked writer into a permanent outage
    /// for every later query would be strictly worse.
    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the sharding state (same poison posture as [`Session::state`]:
    /// the guarded value is swapped whole, never left half-updated).
    fn sharding(&self) -> MutexGuard<'_, Option<ShardingState>> {
        self.sharding.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a session on `graph` with the paper-default [`GmConfig`].
    /// Builds the BFL reachability index once (the per-graph setup cost of
    /// Fig. 18a); every prepared query reuses it.
    pub fn new(graph: impl Into<Arc<DataGraph>>) -> Session {
        Session::with_config(graph, GmConfig::default())
    }

    /// Opens a session with an explicit pipeline configuration (ablation
    /// knobs, simulation tuning, RIG build threads).
    pub fn with_config(graph: impl Into<Arc<DataGraph>>, config: GmConfig) -> Session {
        let base = graph.into();
        let bfl = Arc::new(BflIndex::new(&base));
        let snapshot = Arc::new(Snapshot::clean(base));
        Session {
            state: Mutex::new(State {
                snapshot,
                bfl,
                version: 0,
                commits: 0,
                compactions: 0,
                cache: PlanCache {
                    capacity: DEFAULT_CACHE_CAPACITY,
                    entries: Vec::new(),
                    evictions: 0,
                },
                pairs: None,
                shard_log: Vec::new(),
                shard_log_overflow: false,
            }),
            config,
            compaction: CompactionPolicy::default(),
            store: None,
            recovery: None,
            sharding: Mutex::new(None),
            sharding_on: std::sync::atomic::AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            wal_flush_failures: AtomicU64::new(0),
        }
    }

    // -- durable sessions ---------------------------------------------------

    /// Creates a **durable** session: initializes a fresh store at `dir`
    /// (binary snapshot segment + empty WAL) holding `graph`, then every
    /// [`Session::commit`] is written ahead to the log before it
    /// publishes. Fails if `dir` already holds a store — reopen those
    /// with [`Session::open`].
    pub fn create_at(
        dir: impl AsRef<Path>,
        graph: impl Into<Arc<DataGraph>>,
    ) -> Result<Session, Error> {
        Session::create_at_with(
            dir,
            graph,
            GmConfig::default(),
            Arc::new(FsBackend),
            StoreOptions::default(),
        )
    }

    /// [`Session::create_at`] with explicit pipeline config, storage
    /// backend (fault injection in tests) and durability options.
    pub fn create_at_with(
        dir: impl AsRef<Path>,
        graph: impl Into<Arc<DataGraph>>,
        config: GmConfig,
        backend: Arc<dyn StorageBackend>,
        opts: StoreOptions,
    ) -> Result<Session, Error> {
        let base = graph.into();
        let store = DurableStore::create(backend, dir.as_ref(), &base, 0, opts)?;
        let mut session = Session::with_config(base, config);
        session.store = Some(Mutex::new(store));
        Ok(session)
    }

    /// Recovers a durable session from the store at `dir`: loads the last
    /// durable snapshot segment, replays the WAL (tolerating a torn tail),
    /// and resumes at the recovered version. [`Session::recovery_report`]
    /// tells what happened.
    pub fn open(dir: impl AsRef<Path>) -> Result<Session, Error> {
        Session::open_with(dir, GmConfig::default(), Arc::new(FsBackend), StoreOptions::default())
    }

    /// [`Session::open`] with explicit pipeline config, storage backend
    /// and durability options.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: GmConfig,
        backend: Arc<dyn StorageBackend>,
        opts: StoreOptions,
    ) -> Result<Session, Error> {
        let dir = dir.as_ref();
        let (store, recovered) = DurableStore::open(backend, dir, opts)?;
        let base = Arc::new(recovered.base);
        let bfl = Arc::new(BflIndex::new(&base));
        let mut overlay = DeltaOverlay::new(Arc::clone(&base));
        let mut version = recovered.base_version;
        for rec in &recovered.txns {
            let mut impact = CommitImpact::default();
            for op in &rec.ops {
                // a durable record that no longer applies means the log and
                // segment disagree — that is corruption, not a user error
                overlay.apply(op, &mut impact).map_err(|e| StorageError::Corrupt {
                    path: dir.join("wal.log"),
                    detail: format!("replaying committed version {}: {e}", rec.version),
                })?;
            }
            version = rec.version;
        }
        let snapshot = Arc::new(Snapshot::new(Arc::new(overlay), version));
        let mut session = Session::with_config(Arc::clone(&base), config);
        {
            let mut st = session.state();
            st.snapshot = snapshot;
            st.bfl = bfl;
            st.version = version;
        }
        session.store = Some(Mutex::new(store));
        session.recovery = Some(recovered.report);
        Ok(session)
    }

    /// True when commits are written ahead to a durable store.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// The recovery report, when this session came from [`Session::open`].
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// fsyncs any WAL records batched but not yet synced (a no-op under
    /// `Durability::Strict`). Call before a planned shutdown under
    /// `Durability::Batched` to close the loss window; dropping the
    /// session does this best-effort.
    ///
    /// Failures — including a store mutex poisoned by a panicked writer —
    /// come back as typed [`Error::Storage`] values (never a panic) and
    /// are counted in [`StoreStats::wal_flush_failures`].
    pub fn flush_wal(&self) -> Result<(), Error> {
        let Some(store) = &self.store else { return Ok(()) };
        let result = match lock_store(store) {
            Ok(mut s) => s.flush().map_err(Error::from),
            Err(e) => Err(e),
        };
        if result.is_err() {
            self.wal_flush_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Sets the plan-cache capacity (0 disables caching). Builder-style;
    /// call right after construction.
    pub fn cache_capacity(self, capacity: usize) -> Session {
        {
            let mut st = self.state();
            st.cache.capacity = capacity;
            while st.cache.entries.len() > capacity {
                st.cache.entries.pop();
                st.cache.evictions += 1;
            }
        }
        self
    }

    /// Sets the delta-compaction policy. Builder-style; call right after
    /// construction.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Session {
        self.compaction = policy;
        self
    }

    // -- sharded execution --------------------------------------------------

    /// Enables sharded execution: the graph is partitioned into
    /// `opts.shards` edge-partitioned shards (see [`ShardOptions`]) and
    /// every subsequent run routes through the scatter-gather MJoin of
    /// `rig_shard` — per-shard RIG blocks, boundary bindings exchanged
    /// between shard workers, results merged under the exact limit /
    /// timeout discipline of the single-graph engines. The partitioned
    /// store and plans build lazily on the first run.
    ///
    /// Notes on semantics under sharding (all answers stay exact):
    /// - `count()` always enumerates (the factorized DP is a single-graph
    ///   structure); `collect` returns tuples sorted ascending.
    /// - `threads` / `morsel` knobs are ignored — parallelism is one
    ///   worker per shard.
    /// - a run's timeout budgets the enumeration phase; the shard store /
    ///   plan build is not preempted mid-build.
    ///
    /// Calling again replaces the configuration and drops any partitioned
    /// state built under the old one.
    pub fn set_sharding(&self, opts: ShardOptions) {
        let mut guard = self.sharding();
        {
            let mut st = self.state();
            st.shard_log.clear();
            st.shard_log_overflow = false;
        }
        self.sharding_on.store(true, Ordering::Relaxed);
        *guard = Some(ShardingState::new(opts));
    }

    /// Disables sharded execution: later runs use the single-graph
    /// engines again. Idempotent.
    pub fn clear_sharding(&self) {
        let mut guard = self.sharding();
        self.sharding_on.store(false, Ordering::Relaxed);
        {
            let mut st = self.state();
            st.shard_log.clear();
            st.shard_log_overflow = false;
        }
        *guard = None;
    }

    /// Sharded-execution counters, or `None` when sharding is off. Size
    /// columns are zero until the first sharded run builds the store.
    pub fn sharding_stats(&self) -> Option<ShardingStats> {
        let guard = self.sharding();
        let sh = guard.as_ref()?;
        let ns = sh.opts.effective_shards();
        let mut per_shard: Vec<ShardCounters> = (0..ns)
            .map(|s| ShardCounters {
                rig_builds: sh.rig_builds[s],
                tasks: sh.tasks[s],
                emitted: sh.emitted[s],
                ..ShardCounters::default()
            })
            .collect();
        let mut cut_edges = 0;
        if let Some(store) = &sh.store {
            cut_edges = store.total_cut_edges();
            for (s, counters) in per_shard.iter_mut().enumerate() {
                let stats = &store.shard(s).stats;
                counters.owned_nodes = stats.owned_nodes;
                counters.internal_edges = stats.internal_edges;
                counters.cut_out = stats.cut_out;
                counters.cut_in = stats.cut_in;
            }
        }
        Some(ShardingStats { shards: ns, partitioner: sh.opts.partitioner, cut_edges, per_shard })
    }

    /// The current graph snapshot: an O(1) immutable view. Holding it
    /// pins nothing — later commits simply publish newer snapshots.
    pub fn graph(&self) -> Arc<Snapshot> {
        Arc::clone(&self.state().snapshot)
    }

    /// The session's pipeline configuration.
    pub fn config(&self) -> &GmConfig {
        &self.config
    }

    /// The graph epoch: bumped by every [`Session::replace_graph`] (a
    /// whole-graph swap, as opposed to the versioned commits of
    /// [`Session::commit`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Reachability-index construction time (Fig. 18a's "BFL" column).
    pub fn index_build_time(&self) -> Duration {
        Duration::from_secs_f64(self.bfl().build_seconds())
    }

    /// The concrete BFL index of the current **base segment**, for
    /// harnesses that drive RIG construction outside the session. On a
    /// dirty snapshot pair it with [`rig_reach::SnapshotReach`].
    pub fn bfl(&self) -> Arc<BflIndex> {
        Arc::clone(&self.state().bfl)
    }

    /// Swaps in a whole new graph: rebuilds the reachability index, bumps
    /// the epoch and drops every cached plan. For incremental changes use
    /// [`Session::begin`] / [`Session::commit`], which keep unaffected
    /// plans cached.
    ///
    /// Takes `&mut self` deliberately: a [`Prepared`] resolved its label
    /// names against the *old* graph, so the borrow checker must prevent
    /// any from outliving the swap (commits only grow the label space, so
    /// they are safe under `&self`; a wholesale replacement is not).
    ///
    /// On a durable session the new graph is checkpointed to a fresh
    /// segment *before* the in-memory swap; a storage failure leaves both
    /// the session and the store on the old graph. In-memory sessions
    /// never fail.
    pub fn replace_graph(&mut self, graph: impl Into<Arc<DataGraph>>) -> Result<(), Error> {
        let base = graph.into();
        let bfl = Arc::new(BflIndex::new(&base));
        let mut st = self.state();
        let version = st.version + 1;
        if let Some(store) = &self.store {
            let mut s = lock_store(store)?;
            s.checkpoint(&base, version)?;
            // best-effort: leftover WAL records are all <= the old version
            // and replay skips them against the new segment
            let _ = s.truncate_wal(version);
        }
        st.version = version;
        st.snapshot = Arc::new(Snapshot::new(Arc::new(DeltaOverlay::new(base)), version));
        st.bfl = bfl;
        st.cache.entries.clear();
        st.pairs = None;
        st.shard_log.clear();
        st.shard_log_overflow = false;
        drop(st);
        // the new graph invalidates the partitioned store wholesale (the
        // owner function itself depends on the node-id space)
        if let Some(sh) = self.sharding().as_mut() {
            sh.reset();
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // -- mutation API -------------------------------------------------------

    /// Starts a mutation transaction against the current store version.
    pub fn begin(&self) -> GraphTxn {
        let st = self.state();
        GraphTxn {
            ops: Vec::new(),
            next_node: st.snapshot.num_nodes() as NodeId,
            start_version: st.version,
        }
    }

    /// Atomically applies a transaction: validates and applies every op to
    /// a private copy of the delta, publishes a new snapshot on success,
    /// sweeps the plan cache by label-set fingerprint, and compacts the
    /// store if the delta crossed the policy threshold. Fails without side
    /// effects on the first invalid op, or if another commit landed since
    /// [`Session::begin`] (optimistic concurrency).
    pub fn commit(&self, txn: GraphTxn) -> Result<CommitSummary, Error> {
        let mut st = self.state();
        if st.version != txn.start_version {
            return Err(Error::Conflict { started_at: txn.start_version, current: st.version });
        }
        let mut overlay: DeltaOverlay = (**st.snapshot.delta()).clone();
        let mut impact = CommitImpact::default();
        for op in &txn.ops {
            overlay.apply(op, &mut impact).map_err(Error::validation)?;
        }
        // write-ahead: the record must be durable (to the policy's
        // standard) before the commit publishes. On error nothing was
        // published and the store rolled back, so the commit simply fails.
        if let Some(store) = &self.store {
            lock_store(store)?.log_commit(st.version + 1, &txn.ops)?;
        }
        st.version += 1;
        st.commits += 1;
        st.pairs = None;
        let delta_ops = overlay.ops();
        let base = overlay.base();
        let base_size = (base.num_nodes() + base.num_edges()) as u64;
        st.snapshot = Arc::new(Snapshot::new(Arc::new(overlay), st.version));

        // label-aware invalidation sweep
        let touched_mask = impact.touched_mask();
        let version = st.version;
        let mut invalidated = 0u64;
        st.cache.entries.retain(|e| {
            let stale = (e.has_reach && impact.structural)
                || (e.mask & touched_mask != 0
                    && e.key.labels.iter().any(|l| impact.touched.contains(l)));
            if stale {
                invalidated += 1;
            }
            !stale
        });
        self.invalidated.fetch_add(invalidated, Ordering::Relaxed);
        let retained = st.cache.entries.len() as u64;
        // feed the shard log under the same lock that published the
        // snapshot, so the next sharded run drains (snapshot, pending
        // ops) atomically and routes staleness to exactly the owner
        // shards of this commit's endpoints
        if self.sharding_on.load(Ordering::Relaxed) {
            if st.shard_log.len() + txn.ops.len() > SHARD_LOG_CAP {
                st.shard_log.clear();
                st.shard_log_overflow = true;
            } else {
                st.shard_log.extend(txn.ops.iter().cloned());
            }
        }
        drop(st);

        // compaction happens *outside* the state lock (materialize + BFL
        // rebuild are the expensive part) so readers keep executing
        // against the just-published snapshot in the meantime
        let compacted = self.compaction.due(delta_ops, base_size) && self.compact_at(version);
        Ok(CommitSummary {
            version,
            nodes_added: impact.nodes_added,
            nodes_removed: impact.nodes_removed,
            edges_added: impact.edges_added,
            edges_removed: impact.edges_removed,
            touched_labels: {
                let mut t: Vec<Label> = impact.touched.iter().copied().collect();
                t.sort_unstable();
                t
            },
            structural: impact.structural,
            plans_invalidated: invalidated,
            plans_retained: retained,
            compacted,
        })
    }

    /// Convenience: begin + stage `ops` + commit.
    pub fn apply(&self, ops: &[MutationOp]) -> Result<CommitSummary, Error> {
        let mut txn = self.begin();
        for op in ops {
            txn.push(op.clone());
        }
        self.commit(txn)
    }

    /// Forces a compaction now (merge the delta into a fresh base segment
    /// and rebuild BFL). Returns `false` when the delta was already empty
    /// or a concurrent commit raced the merge (that commit will trigger
    /// its own compaction if the delta is still over threshold).
    pub fn compact(&self) -> bool {
        let version = {
            let st = self.state();
            if !st.snapshot.is_dirty() {
                return false;
            }
            st.version
        };
        self.compact_at(version)
    }

    /// Compacts the snapshot published at `version`: materializes the
    /// merged base and rebuilds BFL **without holding the state lock**,
    /// then swaps both in iff no commit landed in the meantime. Losing
    /// the race just wastes the build — the racing commit re-evaluates
    /// the threshold itself. Cached plans are deliberately kept:
    /// compaction changes representation, never the graph.
    fn compact_at(&self, version: u64) -> bool {
        let snapshot = {
            let st = self.state();
            if st.version != version {
                return false;
            }
            Arc::clone(&st.snapshot)
        };
        let merged = Arc::new(snapshot.materialize());
        let bfl = Arc::new(BflIndex::new(&merged));
        // durable checkpoint happens *before* the swap and outside the
        // state lock: write-new, fsync, atomic rename. If a commit races
        // us the leftover segment is harmless (replay skips the records it
        // absorbed); if the checkpoint fails, compaction is skipped and
        // the previous segment + full WAL stay authoritative.
        if let Some(store) = &self.store {
            let Ok(mut s) = lock_store(store) else { return false };
            if s.checkpoint(&merged, version).is_err() {
                return false;
            }
        }
        let mut st = self.state();
        if st.version != version {
            return false;
        }
        if let Some(store) = &self.store {
            // safe under the state lock: no commit newer than `version`
            // can be logged concurrently. Best-effort — a failed truncate
            // leaves records the next replay skips.
            if let Ok(mut s) = lock_store(store) {
                let _ = s.truncate_wal(version);
            }
        }
        st.snapshot = Arc::new(Snapshot::new(Arc::new(DeltaOverlay::new(merged)), version));
        st.bfl = bfl;
        st.compactions += 1;
        true
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear_cache(&self) {
        self.state().cache.entries.clear();
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let st = self.state();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: st.cache.evictions,
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: st.cache.entries.len(),
            capacity: st.cache.capacity,
        }
    }

    /// Graph-store counters.
    pub fn store_stats(&self) -> StoreStats {
        let st = self.state();
        let base = st.snapshot.base();
        StoreStats {
            version: st.version,
            commits: st.commits,
            compactions: st.compactions,
            delta_ops: st.snapshot.delta().ops(),
            base_nodes: base.num_nodes(),
            base_edges: base.num_edges(),
            live_nodes: st.snapshot.num_live_nodes(),
            edges: st.snapshot.num_edges(),
            wal_flush_failures: self.wal_flush_failures.load(Ordering::Relaxed),
        }
    }

    // -- static analysis ----------------------------------------------------

    /// Runs the static analyzer (`rig_analyze`) over HPQL text against
    /// the current snapshot: name resolution with did-you-mean hints,
    /// emptiness proofs (empty labels, zero label-pair edge counts,
    /// refuted reachability), redundancy lints and cost warnings. Never
    /// executes the query. Parse failures come back as `P001`
    /// diagnostics inside the report, not as `Err`.
    ///
    /// The label-pair count matrix is built lazily and cached per store
    /// version; reachability refutation probes BFL directly on clean
    /// snapshots and the delta-aware [`SnapshotReach`] oracle on dirty
    /// ones, so proofs stay sound across uncompacted commits.
    pub fn analyze(&self, text: &str) -> Report {
        self.with_analyzer(|a| a.analyze_text(text))
    }

    /// [`Session::analyze`] over a pre-parsed AST. `source` is the
    /// original query text, for caret rendering in diagnostics.
    pub fn analyze_ast(&self, ast: &rig_query::HpqlQuery, source: Option<&str>) -> Report {
        self.with_analyzer(|a| a.analyze_ast(ast, source))
    }

    /// [`Session::analyze`] over a hand-built pattern (legacy query
    /// files): same passes, span-less diagnostics.
    pub fn analyze_pattern(&self, q: &PatternQuery) -> Report {
        self.with_analyzer(|a| a.analyze_pattern(q, None))
    }

    fn with_analyzer<R>(&self, f: impl FnOnce(&Analyzer<'_>) -> R) -> R {
        let (snapshot, bfl, version) = {
            let st = self.state();
            (Arc::clone(&st.snapshot), Arc::clone(&st.bfl), st.version)
        };
        let pairs = self.pair_counts(version, &snapshot);
        let config = AnalyzerConfig {
            dp_conditioning_limit: crate::factorized::DP_CONDITIONING_LIMIT,
            ..AnalyzerConfig::default()
        };
        let view = GraphView::from(&*snapshot);
        if snapshot.is_dirty() {
            let reach = SnapshotReach::new(&snapshot, &bfl);
            f(&Analyzer::new(view).with_pair_counts(&pairs).with_reach(&reach).with_config(config))
        } else {
            f(&Analyzer::new(view)
                .with_pair_counts(&pairs)
                .with_reach(bfl.as_ref())
                .with_config(config))
        }
    }

    /// The label-pair count matrix for the snapshot at `version`, built
    /// (O(V + E)) on the first analysis after each commit and cached
    /// until the next one.
    fn pair_counts(&self, version: u64, snapshot: &Snapshot) -> Arc<LabelPairCounts> {
        {
            let st = self.state();
            if let Some((v, pairs)) = &st.pairs {
                if *v == version {
                    return Arc::clone(pairs);
                }
            }
        }
        // built outside the lock; a racing commit just refuses the insert
        let pairs = Arc::new(LabelPairCounts::of(GraphView::from(snapshot)));
        let mut st = self.state();
        if st.version == version {
            st.pairs = Some((version, Arc::clone(&pairs)));
        }
        pairs
    }

    /// [`Session::prepare`] with a lint gate in front. [`LintMode::Off`]
    /// skips analysis entirely; [`LintMode::Warn`] runs it and returns
    /// the report next to the prepared query (the CLI and `explain`
    /// render it); [`LintMode::Strict`] refuses to prepare when any
    /// error-severity diagnostic fires — the full report comes back as
    /// [`Error::Analysis`] (CLI exit code 8, HTTP 422 with a structured
    /// diagnostics body).
    ///
    /// Parse errors keep their ordinary classification
    /// ([`Error::Hpql`], exit code 3) in every mode.
    pub fn prepare_with_lint<'s>(
        &'s self,
        text: &str,
        mode: LintMode,
    ) -> Result<(Prepared<'s>, Report), Error> {
        if matches!(mode, LintMode::Off) {
            return Ok((self.prepare(text)?, Report::default()));
        }
        let ast = parse_hpql(text)?;
        let report = self.analyze_ast(&ast, Some(text));
        if matches!(mode, LintMode::Strict) && report.has_errors() {
            return Err(Error::Analysis(report));
        }
        let prepared = self.prepare(ast)?;
        Ok((prepared, report))
    }

    /// Parses (HPQL text) or adopts (a [`PatternQuery`]) the query,
    /// validates it against the graph, applies §3 transitive reduction and
    /// canonicalizes the result. The returned [`Prepared`] executes any
    /// number of times via [`Prepared::run`]; repeated executions reuse
    /// the cached RIG, and each run sees the newest committed snapshot.
    pub fn prepare<'s, Q: IntoPattern>(&'s self, source: Q) -> Result<Prepared<'s>, Error> {
        let snapshot = self.graph();
        let (original, vars) = source.into_pattern(GraphView::from(&*snapshot))?;
        validate_pattern(&*snapshot, &original, vars.as_deref())?;
        let red_start = Instant::now();
        let (reduced, edges_reduced) = if self.config.skip_reduction {
            (original.clone(), 0)
        } else {
            let r = transitive_reduction(&original);
            let removed = original.num_edges() - r.num_edges();
            (r, removed)
        };
        let exec = reduced.canonical();
        let reduction_time = red_start.elapsed();
        // capture just the resolved label names for rendering — pinning
        // the whole snapshot here would keep a superseded base segment +
        // overlay alive for the Prepared's entire lifetime
        let mut label_names: Vec<(Label, String)> = original
            .labels()
            .iter()
            .map(|&l| (l, snapshot.label_name(l).to_string()))
            .filter(|(_, n)| !n.is_empty())
            .collect();
        label_names.sort_unstable();
        label_names.dedup();
        Ok(Prepared {
            session: self,
            label_names,
            original,
            exec,
            vars,
            edges_reduced,
            reduction_time,
        })
    }

    /// Looks up or builds the RIG for `prepared`. Returns the plan and
    /// whether it came from the cache. No lock is held during the build,
    /// so concurrent misses on the same key build twice and the second
    /// insert wins — wasted work, never a wrong answer; a build raced by
    /// a commit is simply not cached (its snapshot is already stale).
    ///
    /// `deadline` caps the build itself (selection stops at the next
    /// simulation pass boundary, expansion aborts): a timed-out build
    /// comes back as an empty-shaped RIG with `stats.timed_out` set and is
    /// never cached.
    fn rig_for(
        &self,
        prepared: &Prepared<'_>,
        use_cache: bool,
        deadline: Option<Instant>,
    ) -> (Arc<Rig>, bool) {
        let key = CacheKey::new(&prepared.exec, &self.config.rig);
        let (snapshot, bfl, version) = {
            let mut st = self.state();
            if use_cache {
                if let Some(rig) = st.cache.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (rig, true);
                }
                // only attempted lookups count as misses: `no_cache` runs
                // bypass the cache and must not skew the hit rate
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            (Arc::clone(&st.snapshot), Arc::clone(&st.bfl), st.version)
        };
        let opts = self.config.rig.with_deadline(deadline);
        let rig = Arc::new(build_plan(&snapshot, &bfl, &prepared.exec, &opts));
        if use_cache && !rig.stats.timed_out {
            let mut st = self.state();
            // a commit may have landed while we built: then this RIG
            // describes a superseded snapshot and must not be cached
            if st.version == version {
                st.cache.insert(CacheEntry {
                    mask: label_mask(&key.labels),
                    has_reach: prepared
                        .exec
                        .edges()
                        .iter()
                        .any(|e| e.kind == EdgeKind::Reachability),
                    rig: Arc::clone(&rig),
                    key,
                });
            }
        }
        (rig, false)
    }

    /// Looks up or builds the sharded store and plan for `prepared`, or
    /// `None` when sharding is off. The sharding lock is held across the
    /// build (a documented simplification: concurrent sharded runs
    /// serialize on plan setup; enumeration runs outside the lock).
    ///
    /// The pending commit log is drained *under the state lock together
    /// with the snapshot*, so the store refresh set and the graph view it
    /// refreshes against always describe the same version: edge commits
    /// stale exactly their endpoints' owner shards; node/label commits
    /// (and log overflow) reset the partitioned store wholesale, since
    /// the owner function depends on the node-id space.
    fn sharded_plan_for(
        &self,
        prepared: &Prepared<'_>,
        strategy: SearchOrder,
        use_cache: bool,
    ) -> Option<(Arc<ShardedStore>, Arc<ShardedPlan>, bool)> {
        let mut guard = self.sharding();
        let sh = guard.as_mut()?;
        let (snapshot, log, overflow) = {
            let mut st = self.state();
            let log = std::mem::take(&mut st.shard_log);
            let overflow = std::mem::replace(&mut st.shard_log_overflow, false);
            (Arc::clone(&st.snapshot), log, overflow)
        };
        let view = GraphView::from(&*snapshot);
        if overflow {
            sh.reset();
        } else if let Some(store) = &sh.store {
            let mut stale = vec![false; store.num_shards()];
            let mut wholesale = false;
            for op in &log {
                match op {
                    MutationOp::AddEdge(u, v) | MutationOp::RemoveEdge(u, v) => {
                        stale[store.owner(*u)] = true;
                        stale[store.owner(*v)] = true;
                    }
                    _ => {
                        wholesale = true;
                        break;
                    }
                }
            }
            if wholesale {
                sh.reset();
            } else {
                for (s, is_stale) in stale.iter().enumerate() {
                    if *is_stale {
                        sh.shard_versions[s] += 1;
                    }
                }
            }
        }
        let store = match &sh.store {
            Some(store) if sh.store_versions == sh.shard_versions => Arc::clone(store),
            Some(store) => {
                let refresh: Vec<bool> = sh
                    .store_versions
                    .iter()
                    .zip(&sh.shard_versions)
                    .map(|(built, now)| built != now)
                    .collect();
                let refreshed = Arc::new(store.refresh(view, &refresh));
                sh.store_versions.clone_from(&sh.shard_versions);
                sh.store = Some(Arc::clone(&refreshed));
                refreshed
            }
            None => {
                let built = Arc::new(ShardedStore::build(view, &sh.opts));
                sh.store_versions.clone_from(&sh.shard_versions);
                sh.store = Some(Arc::clone(&built));
                built
            }
        };
        let key = CacheKey::new(&prepared.exec, &self.config.rig);
        let pos = sh.plans.iter().position(|e| e.key == key && e.strategy == strategy);
        if use_cache {
            if let Some(i) = pos {
                if sh.plans[i].built_versions == sh.shard_versions {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let entry = sh.plans.remove(i);
                    let plan = Arc::clone(&entry.plan);
                    sh.plans.insert(0, entry);
                    return Some((store, plan, true));
                }
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let has_reach = prepared.exec.edges().iter().any(|e| e.kind == EdgeKind::Reachability);
        // a stale direct plan refreshes only its stale shards'
        // RIG blocks; reachability plans rebuild whole (cut closures
        // compose globally) — mirroring the single-graph invalidation rule
        let plan = match pos {
            Some(i) if use_cache && !sh.plans[i].has_reach => {
                let entry = &sh.plans[i];
                let stale: Vec<bool> = entry
                    .built_versions
                    .iter()
                    .zip(&sh.shard_versions)
                    .map(|(built, now)| built != now)
                    .collect();
                let plan = ShardedPlan::rebuild(view, &store, &prepared.exec, &entry.plan, &stale);
                for (s, is_stale) in stale.iter().enumerate() {
                    if *is_stale {
                        sh.rig_builds[s] += 1;
                    }
                }
                Arc::new(plan)
            }
            _ => {
                for builds in &mut sh.rig_builds {
                    *builds += 1;
                }
                Arc::new(ShardedPlan::build(view, &store, &prepared.exec, strategy))
            }
        };
        if use_cache {
            if let Some(i) = pos {
                sh.plans.remove(i);
            }
            sh.plans.insert(
                0,
                ShardPlanEntry {
                    key,
                    strategy,
                    plan: Arc::clone(&plan),
                    built_versions: sh.shard_versions.clone(),
                    has_reach,
                },
            );
            sh.plans.truncate(SHARD_PLAN_CAPACITY);
        }
        Some((store, plan, false))
    }

    /// Folds a sharded run's per-shard task/emit counters into the
    /// session totals (`/metrics` reads them via
    /// [`Session::sharding_stats`]).
    fn record_shard_run(&self, per_shard: &[rig_shard::ShardRunStats]) {
        let mut guard = self.sharding();
        let Some(sh) = guard.as_mut() else { return };
        for (s, stats) in per_shard.iter().enumerate() {
            if let (Some(tasks), Some(emitted)) = (sh.tasks.get_mut(s), sh.emitted.get_mut(s)) {
                *tasks += stats.tasks;
                *emitted += stats.emitted;
            }
        }
    }
}

/// How much static analysis gates [`Session::prepare_with_lint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintMode {
    /// No analysis: identical to [`Session::prepare`].
    #[default]
    Off,
    /// Analyze and report, but prepare regardless (even provable
    /// emptiness doesn't block — the engine returns 0 for it anyway).
    Warn,
    /// Refuse queries with error-severity diagnostics via
    /// [`Error::Analysis`].
    Strict,
}

impl LintMode {
    /// Parses the CLI / query-string spelling (`off` / `warn` /
    /// `strict`).
    pub fn parse(s: &str) -> Option<LintMode> {
        match s {
            "off" => Some(LintMode::Off),
            "warn" => Some(LintMode::Warn),
            "strict" => Some(LintMode::Strict),
            _ => None,
        }
    }
}

fn label_mask(labels: &[Label]) -> u64 {
    labels.iter().fold(0u64, |m, &l| m | 1u64 << (l & 63))
}

/// Synthesizes [`RigStats`] for a sharded plan so [`GmMetrics`] and
/// [`Explain`] render uniformly: node count is the shared candidate-array
/// total (identical on every shard), edge count sums every shard's
/// adjacency entries, and the whole build cost is charged to expansion.
fn sharded_rig_stats(plan: &ShardedPlan) -> RigStats {
    RigStats {
        node_count: plan.rigs.first().map_or(0, |r| r.stats.node_count),
        edge_count: plan.total_edge_entries(),
        expand_time: plan.build_time,
        ..RigStats::default()
    }
}

/// Builds a RIG against one snapshot. Clean snapshots run the pure
/// base-CSR + BFL path; dirty ones read adjacency through the overlay and
/// probe reachability through the delta-aware [`SnapshotReach`] oracle.
fn build_plan(snapshot: &Snapshot, bfl: &BflIndex, exec: &PatternQuery, opts: &RigOptions) -> Rig {
    if snapshot.is_dirty() {
        let reach = SnapshotReach::new(snapshot, bfl);
        let ctx = SimContext::new(snapshot, exec, &reach);
        build_rig(&ctx, bfl, opts)
    } else {
        let ctx = SimContext::new(snapshot.base(), exec, bfl);
        build_rig(&ctx, bfl, opts)
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("graph", &self.graph())
            .field("store", &self.store_stats())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // close the Batched loss window on a planned shutdown; a failure
        // here is indistinguishable from a crash an instant later (which
        // the recovery path already handles), but it is *recorded* in
        // `wal_flush_failures` rather than swallowed, so anything still
        // holding a stats snapshot path (a server's /metrics scrape racing
        // the drop) can witness it
        if let Some(store) = &self.store {
            let failed = match store.lock() {
                Ok(mut s) => s.flush().is_err(),
                Err(_) => true, // poisoned by a panicked writer
            };
            if failed {
                self.wal_flush_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Validates a pattern against a graph: non-empty, connected, and every
/// label inside the graph's label space (labels with zero data nodes are
/// fine — they simply produce an empty answer). [`Session::prepare`] runs
/// this; front ends that hand patterns to non-Session engines (the CLI
/// baselines) call it directly so bad queries classify identically across
/// engines. `vars` supplies HPQL variable names for error messages.
pub fn validate_pattern<'a>(
    graph: impl Into<GraphView<'a>>,
    query: &PatternQuery,
    vars: Option<&[String]>,
) -> Result<(), Error> {
    let graph = graph.into();
    if query.num_nodes() == 0 {
        return Err(Error::validation("query has no nodes"));
    }
    if !query.is_connected() {
        return Err(Error::validation(
            "query must be connected (every pattern node linked by some chain of edges)",
        ));
    }
    let num_labels = graph.num_labels() as Label;
    for (i, &l) in query.labels().iter().enumerate() {
        if l >= num_labels {
            let var = vars.map_or_else(|| format!("node {i}"), |v| v[i].clone());
            return Err(Error::validation(format!(
                "label id {l} of {var} is outside the graph's label space \
                 (graph has labels 0..{num_labels})"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// query sources
// ---------------------------------------------------------------------------

/// Anything [`Session::prepare`] accepts: HPQL text, a pre-parsed
/// [`rig_query::HpqlQuery`], or a hand-built [`PatternQuery`].
pub trait IntoPattern {
    /// Produces the pattern plus its variable names (text sources only).
    fn into_pattern(
        self,
        graph: GraphView<'_>,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error>;
}

impl IntoPattern for &str {
    fn into_pattern(
        self,
        graph: GraphView<'_>,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        parse_hpql(self)?.into_pattern(graph)
    }
}

impl IntoPattern for &String {
    fn into_pattern(
        self,
        graph: GraphView<'_>,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        self.as_str().into_pattern(graph)
    }
}

impl IntoPattern for rig_query::HpqlQuery {
    fn into_pattern(
        self,
        graph: GraphView<'_>,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        // unknown label names get a "did you mean" hint computed over
        // the graph's label dictionary (same helper the analyzer uses)
        let resolved = self.resolve_with(
            |name| graph.label_id(name),
            |name| {
                closest_label(name, (0..graph.num_labels()).map(|l| graph.label_name(l as Label)))
                    .map(str::to_string)
            },
        )?;
        Ok((resolved.query, Some(resolved.vars)))
    }
}

impl IntoPattern for PatternQuery {
    fn into_pattern(
        self,
        _graph: GraphView<'_>,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        Ok((self, None))
    }
}

impl IntoPattern for &PatternQuery {
    fn into_pattern(
        self,
        _graph: GraphView<'_>,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        Ok((self.clone(), None))
    }
}

// ---------------------------------------------------------------------------
// prepared queries
// ---------------------------------------------------------------------------

/// A parsed, validated, reduced and canonicalized query, bound to its
/// [`Session`]. Create with [`Session::prepare`]; execute with
/// [`Prepared::run`]. Runs always execute against the session's newest
/// snapshot; only the query's resolved label names are captured at
/// prepare time (the label space never shrinks, so validation stays
/// good, and nothing of the prepare-time snapshot is pinned).
pub struct Prepared<'s> {
    session: &'s Session,
    /// `(label, name)` pairs for the query's named labels, for HPQL
    /// rendering.
    label_names: Vec<(Label, String)>,
    original: PatternQuery,
    /// The query the engine runs: transitively reduced + canonical edge
    /// order. Node ids match `original` (they index occurrence tuples).
    exec: PatternQuery,
    vars: Option<Vec<String>>,
    edges_reduced: usize,
    reduction_time: Duration,
}

impl<'s> Prepared<'s> {
    /// The session this plan belongs to.
    pub fn session(&self) -> &'s Session {
        self.session
    }

    /// The query as given (before reduction).
    pub fn query(&self) -> &PatternQuery {
        &self.original
    }

    /// The reduced, canonical query the engine executes.
    pub fn reduced(&self) -> &PatternQuery {
        &self.exec
    }

    /// Variable names (parallel to pattern node ids / occurrence-tuple
    /// positions) when the query came from HPQL text.
    pub fn vars(&self) -> Option<&[String]> {
        self.vars.as_deref()
    }

    /// Reachability edges removed by §3 transitive reduction.
    pub fn edges_reduced(&self) -> usize {
        self.edges_reduced
    }

    /// Pretty-prints the *reduced* query as HPQL (label names resolved
    /// through the graph's dictionary where present).
    pub fn to_hpql(&self) -> String {
        self.render(&self.exec)
    }

    /// Pretty-prints the query *as given* as HPQL.
    pub fn original_hpql(&self) -> String {
        self.render(&self.original)
    }

    fn render(&self, q: &PatternQuery) -> String {
        hpql::to_hpql(q, self.vars.as_deref(), |l| {
            self.label_names
                .binary_search_by_key(&l, |&(label, _)| label)
                .ok()
                .map(|i| self.label_names[i].1.clone())
        })
    }

    /// Starts building an execution of this plan.
    pub fn run(&self) -> Run<'_, 's> {
        Run {
            prepared: self,
            opts: self.session.config.enumeration,
            threads: 1,
            morsel: None,
            use_cache: true,
            force_enumerate: false,
        }
    }
}

impl std::fmt::Debug for Prepared<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("hpql", &self.to_hpql())
            .field("edges_reduced", &self.edges_reduced)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// run builder
// ---------------------------------------------------------------------------

/// Fluent execution builder:
/// `prepared.run().limit(10).timeout(d).threads(4).count()`.
///
/// Defaults come from the session's `GmConfig::enumeration`; every knob
/// here overrides per run. Terminal methods: [`Run::count`],
/// [`Run::collect`], [`Run::collect_all`], [`Run::stream`],
/// [`Run::par_stream`], [`Run::explain`].
#[must_use = "a Run does nothing until a terminal method (count/collect/stream/explain) is called"]
pub struct Run<'a, 's> {
    prepared: &'a Prepared<'s>,
    opts: EnumOptions,
    threads: usize,
    morsel: Option<usize>,
    use_cache: bool,
    force_enumerate: bool,
}

impl<'a, 's> Run<'a, 's> {
    /// Stop after `k` occurrences (exact under parallelism; the run
    /// reports `limit_hit`).
    pub fn limit(mut self, k: u64) -> Self {
        self.opts.limit = Some(k);
        self
    }

    /// Wall-clock budget for the enumeration phase.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.opts.timeout = Some(d);
        self
    }

    /// Search-order strategy (§5.2).
    pub fn order(mut self, order: SearchOrder) -> Self {
        self.opts.order = order;
        self
    }

    /// Enforce injectivity (isomorphism-style matching).
    pub fn injective(mut self, injective: bool) -> Self {
        self.opts.injective = injective;
        self
    }

    /// Morsel-driven parallel enumeration with `n` workers (1 =
    /// sequential).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Morsel size for the parallel engine (positions claimed per cursor
    /// bump).
    pub fn morsel(mut self, morsel: usize) -> Self {
        self.morsel = Some(morsel.max(1));
        self
    }

    /// Bypass the plan cache for this run (the RIG is rebuilt and not
    /// stored) — benchmarking cold paths, mostly.
    pub fn no_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    /// Escape hatch: never answer [`Run::count`] with the factorized DP,
    /// always enumerate tuples (differential testing, benchmarking the
    /// enumeration path).
    pub fn force_enumerate(mut self) -> Self {
        self.force_enumerate = true;
        self
    }

    fn par_options(&self) -> ParOptions {
        let mut par = ParOptions::with_threads(self.threads);
        if let Some(m) = self.morsel {
            par.morsel = m;
        }
        par
    }

    /// Executes this run through the scatter-gather engine when the
    /// session has sharding enabled; `None` falls through to the
    /// single-graph engines. The run's wall-clock budget covers the
    /// enumeration phase (a store/plan build in progress is not
    /// preempted); tuples come back sorted ascending, so sharded output
    /// is deterministic regardless of exchange interleaving.
    fn sharded(&self, want_tuples: bool) -> Option<(Vec<Vec<NodeId>>, QueryOutcome)> {
        let session = self.prepared.session;
        let total_start = Instant::now();
        let deadline = self.opts.timeout.and_then(|d| total_start.checked_add(d));
        let (_store, plan, from_cache) =
            session.sharded_plan_for(self.prepared, self.opts.order, self.use_cache)?;
        let enum_start = Instant::now();
        let (result, tuples) = if plan.is_empty() {
            (EnumResult::empty(Vec::new()), Vec::new())
        } else {
            let mut opts = self.opts;
            if let Some(d) = deadline {
                opts.timeout = Some(d.saturating_duration_since(Instant::now()));
            }
            let run = run_sharded(&plan, &opts, want_tuples);
            session.record_shard_run(&run.per_shard);
            (run.result, run.tuples)
        };
        let metrics = GmMetrics {
            reduction_time: self.prepared.reduction_time,
            rig_stats: sharded_rig_stats(&plan),
            enumeration_time: enum_start.elapsed(),
            total_time: total_start.elapsed(),
            edges_reduced: self.prepared.edges_reduced,
            rig_from_cache: from_cache,
            counted_via_factorization: false,
        };
        Some((tuples, QueryOutcome { result, metrics }))
    }

    fn execute(
        self,
        engine: impl FnOnce(&PatternQuery, &Rig, &EnumOptions) -> EnumResult,
    ) -> QueryOutcome {
        let total_start = Instant::now();
        // One wall-clock budget for the whole run: the RIG build consumes
        // it first, enumeration gets what remains.
        let deadline = self.opts.timeout.and_then(|d| total_start.checked_add(d));
        let (rig, from_cache) =
            self.prepared.session.rig_for(self.prepared, self.use_cache, deadline);
        let enum_start = Instant::now();
        let result = if rig.stats.timed_out {
            // the build deadline expired: a timeout, never an empty answer
            EnumResult { timed_out: true, ..EnumResult::empty(Vec::new()) }
        } else if rig.is_empty() {
            EnumResult::empty(Vec::new())
        } else {
            let mut opts = self.opts;
            if let Some(d) = deadline {
                opts.timeout = Some(d.saturating_duration_since(Instant::now()));
            }
            engine(&self.prepared.exec, &rig, &opts)
        };
        let enumeration_time = enum_start.elapsed();
        let metrics = GmMetrics {
            reduction_time: self.prepared.reduction_time,
            rig_stats: rig.stats.clone(),
            enumeration_time,
            total_time: total_start.elapsed(),
            edges_reduced: self.prepared.edges_reduced,
            rig_from_cache: from_cache,
            counted_via_factorization: false,
        };
        QueryOutcome { result, metrics }
    }

    /// Counts the occurrences.
    ///
    /// Eligible plans (no injectivity, no limit/timeout budget — see
    /// [`crate::factorized::dp_eligible`]) are answered by the factorized
    /// counting DP over the pruned RIG without enumerating a single tuple,
    /// witnessed by [`GmMetrics::counted_via_factorization`]. The
    /// [`Run::force_enumerate`] escape hatch and any budget knob fall back
    /// to the (possibly parallel) MJoin enumeration engine.
    pub fn count(self) -> QueryOutcome {
        // sharded sessions always enumerate: the factorized DP is a
        // single-graph structure (see `Session::set_sharding`)
        if let Some((_, outcome)) = self.sharded(false) {
            return outcome;
        }
        let threads = self.threads;
        let par = self.par_options();
        let force_enumerate = self.force_enumerate;
        let mut via_dp = false;
        let mut outcome = self.execute(|q, rig, opts| {
            if !force_enumerate && crate::factorized::dp_eligible(opts) {
                if let Some(r) = crate::factorized::dp_count_result(q, rig) {
                    via_dp = true;
                    return r;
                }
            }
            if threads > 1 {
                rig_mjoin::par_count_with(q, rig, opts, &par)
            } else {
                rig_mjoin::count(q, rig, opts)
            }
        });
        outcome.metrics.counted_via_factorization = via_dp;
        outcome
    }

    /// Like [`Run::count`] but errs with [`Error::Budget`] when the limit
    /// or timeout truncated the answer.
    pub fn try_count(self) -> Result<QueryOutcome, Error> {
        self.count().require_complete()
    }

    /// Collects up to `max` occurrence tuples (indexed by pattern node
    /// id). Parallel runs return the tuples sorted (deterministic across
    /// schedules); sequential runs return enumeration order.
    pub fn collect(mut self, max: usize) -> (Vec<Vec<NodeId>>, QueryOutcome) {
        // cap enumeration at `max` unless a tighter limit is already set
        if self.opts.limit.is_none_or(|l| l > max as u64) {
            self.opts.limit = Some(max as u64);
        }
        if let Some(sharded) = self.sharded(true) {
            return sharded;
        }
        let threads = self.threads;
        let par = self.par_options();
        let mut tuples = Vec::new();
        let outcome = self.execute(|q, rig, opts| {
            if threads > 1 {
                let (t, r) = rig_mjoin::par_collect_sorted(q, rig, opts, &par);
                tuples = t;
                r
            } else {
                let (t, r) = rig_mjoin::collect(q, rig, opts, max);
                tuples = t;
                r
            }
        });
        (tuples, outcome)
    }

    /// Collects every occurrence tuple (honors an explicit
    /// [`Run::limit`]).
    pub fn collect_all(self) -> (Vec<Vec<NodeId>>, QueryOutcome) {
        let max = self.opts.limit.map_or(usize::MAX, |l| l as usize);
        self.collect(max)
    }

    /// Streams every occurrence into `sink` on the calling thread
    /// (ignores [`Run::threads`] — parallel streaming needs per-worker
    /// sinks, see [`Run::par_stream`]).
    pub fn stream<S: ResultSink>(self, sink: &mut S) -> QueryOutcome {
        // sharded runs gather (sorted) first, then feed the sink on the
        // calling thread — the sink contract (finish exactly once) holds
        if let Some((tuples, outcome)) = self.sharded(true) {
            for tuple in &tuples {
                if !sink.push(tuple) {
                    break;
                }
            }
            sink.finish();
            return outcome;
        }
        let mut ran = false;
        let outcome = self.execute(|q, rig, opts| {
            ran = true;
            rig_mjoin::enumerate_sink(q, rig, opts, sink)
        });
        if !ran {
            // empty-RIG short circuit: the sink contract (finish exactly
            // once per run) must still hold
            sink.finish();
        }
        outcome
    }

    /// Parallel streaming: `make_sink(worker)` builds one sink per
    /// worker; returns the sinks (all finished) with the outcome.
    pub fn par_stream<S, F>(self, make_sink: F) -> (Vec<S>, QueryOutcome)
    where
        S: ResultSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        let par = self.par_options();
        let mut sinks = Vec::new();
        let outcome = self.execute(|q, rig, opts| {
            let (s, r) = rig_mjoin::par_enumerate(q, rig, opts, &par, &make_sink);
            sinks = s;
            r
        });
        if sinks.is_empty() {
            // empty-RIG short circuit: hand back one finished sink per
            // worker so callers can merge uniformly
            sinks = (0..par.threads.max(1))
                .map(|w| {
                    let mut s = make_sink(w);
                    s.finish();
                    s
                })
                .collect();
        }
        (sinks, outcome)
    }

    /// Explains the plan without enumerating: the reduced query, whether
    /// its RIG came from the cache, the RIG statistics and the search
    /// order MJoin would use.
    pub fn explain(self) -> Explain {
        let prepared = self.prepared;
        if let Some((store, plan, from_cache)) =
            prepared.session.sharded_plan_for(prepared, self.opts.order, self.use_cache)
        {
            let ns = store.num_shards();
            let empty = plan.is_empty();
            return Explain {
                hpql: prepared.original_hpql(),
                reduced_hpql: prepared.to_hpql(),
                edges_reduced: prepared.edges_reduced,
                rig_stats: sharded_rig_stats(&plan),
                rig_from_cache: from_cache,
                empty_answer: empty,
                order_kind: self.opts.order,
                order: if empty { Vec::new() } else { plan.order.clone() },
                vars: prepared.vars.clone(),
                count_strategy: crate::factorized::CountStrategy {
                    eligible: false,
                    describe: format!("sharded scatter-gather enumeration over {ns} shard(s)"),
                },
                shards: Some(ShardExplain {
                    shards: ns,
                    partitioner: store.partition().partitioner(),
                    cut_edges: store.total_cut_edges(),
                    per_shard: (0..ns).map(|s| store.shard(s).stats.clone()).collect(),
                    rig_entries: plan.rigs.iter().map(|r| r.stats.edge_count).collect(),
                }),
            };
        }
        let (rig, from_cache) = prepared.session.rig_for(prepared, self.use_cache, None);
        let order = if rig.is_empty() {
            Vec::new()
        } else {
            compute_order(&prepared.exec, &rig, self.opts.order)
        };
        let count_strategy =
            crate::factorized::strategy(&prepared.exec, &self.opts, self.force_enumerate);
        Explain {
            hpql: prepared.original_hpql(),
            reduced_hpql: prepared.to_hpql(),
            edges_reduced: prepared.edges_reduced,
            rig_stats: rig.stats.clone(),
            rig_from_cache: from_cache,
            empty_answer: rig.is_empty(),
            order_kind: self.opts.order,
            order,
            vars: prepared.vars.clone(),
            count_strategy,
            shards: None,
        }
    }

    /// Builds the factorized answer-graph summary (the CLI's
    /// `--factorized` output mode): shape, exact DP count and
    /// per-variable distinct-binding cardinalities, computed without
    /// materializing any tuple. Ignores [`Run::threads`] and the limit
    /// knob — this terminal always runs the DP. A [`Run::timeout`] *is*
    /// honored: it caps the RIG build and the DP's conditioning loop, and
    /// a truncated summary reports `timed_out` with `count: None`.
    pub fn factorized_summary(self) -> crate::factorized::FactorizedSummary {
        use crate::factorized::{FactorizedSummary, VarSummary};
        let prepared = self.prepared;
        let deadline = self.opts.timeout.and_then(|d| Instant::now().checked_add(d));
        let (rig, from_cache) = prepared.session.rig_for(prepared, self.use_cache, deadline);
        let q = &prepared.exec;
        let name_of = |i: usize| match prepared.vars.as_deref() {
            Some(v) => v[i].clone(),
            None => format!("v{i}"),
        };
        if rig.is_empty() {
            let timed_out = rig.stats.timed_out;
            return FactorizedSummary {
                hpql: prepared.to_hpql(),
                tree: crate::factorized::FactorizationShape::analyze(q).is_tree(),
                extra_edges: crate::factorized::FactorizationShape::analyze(q).extra_edges.len(),
                conditioned: Vec::new(),
                assignments: 0,
                count: if timed_out { None } else { Some(0) },
                vars: (0..q.num_nodes())
                    .map(|i| VarSummary { name: name_of(i), candidates: 0, distinct: 0 })
                    .collect(),
                rig_from_cache: from_cache,
                timed_out,
            };
        }
        let mut f = crate::factorized::Factorization::new(q, &rig);
        f.set_deadline(deadline);
        let dp = f.count();
        // cardinalities re-run the conditioning loop: skip them once the
        // budget is gone rather than doubling the overrun
        let cards = if dp.timed_out { vec![0; q.num_nodes()] } else { f.var_cardinalities() };
        FactorizedSummary {
            hpql: prepared.to_hpql(),
            tree: f.is_tree(),
            extra_edges: f.shape().extra_edges.len(),
            conditioned: f.shape().conditioned.iter().map(|&c| name_of(c as usize)).collect(),
            assignments: dp.assignments,
            count: dp.total,
            vars: (0..q.num_nodes())
                .map(|i| VarSummary {
                    name: name_of(i),
                    candidates: rig.cos_len(i as QNode),
                    distinct: cards[i],
                })
                .collect(),
            rig_from_cache: from_cache,
            timed_out: dp.timed_out,
        }
    }
}

/// Plan description produced by [`Run::explain`] (and the CLI's `explain`
/// mode).
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query as given, pretty-printed as HPQL.
    pub hpql: String,
    /// The transitively reduced, canonical query the engine executes.
    pub reduced_hpql: String,
    /// Reachability edges removed by the reduction.
    pub edges_reduced: usize,
    /// Statistics of the (possibly cached) RIG.
    pub rig_stats: RigStats,
    /// True when the RIG came from the session's plan cache.
    pub rig_from_cache: bool,
    /// True when some candidate set is empty — the answer is empty and
    /// enumeration would be skipped entirely.
    pub empty_answer: bool,
    /// Search-order strategy that would drive MJoin.
    pub order_kind: SearchOrder,
    /// The concrete node order (empty when `empty_answer`).
    pub order: Vec<QNode>,
    /// Variable names, when the query came from HPQL.
    pub vars: Option<Vec<String>>,
    /// How [`Run::count`] would answer under this run's options:
    /// factorized DP eligibility and the human-readable choice.
    pub count_strategy: crate::factorized::CountStrategy,
    /// Sharded-plan description when the session runs sharded.
    pub shards: Option<ShardExplain>,
}

/// Per-shard plan description inside [`Explain`] (see
/// [`Session::set_sharding`]).
#[derive(Debug, Clone)]
pub struct ShardExplain {
    /// Number of shards.
    pub shards: usize,
    /// The owner function in use.
    pub partitioner: Partitioner,
    /// Total edges crossing shard boundaries.
    pub cut_edges: u64,
    /// Per-shard store sizes, indexed by shard id.
    pub per_shard: Vec<rig_shard::ShardStats>,
    /// Per-shard RIG adjacency entries (the shard's share of the plan).
    pub rig_entries: Vec<u64>,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query:    {}", self.hpql)?;
        writeln!(f, "reduced:  {} ({} edge(s) removed)", self.reduced_hpql, self.edges_reduced)?;
        writeln!(
            f,
            "RIG:      {} nodes / {} edges ({}, {} sim passes, {} pruned)",
            self.rig_stats.node_count,
            self.rig_stats.edge_count,
            if self.rig_from_cache { "cached" } else { "built" },
            self.rig_stats.sim_passes,
            self.rig_stats.pruned,
        )?;
        if let Some(sh) = &self.shards {
            writeln!(
                f,
                "shards:   {} ({} partitioning), {} cut edge(s)",
                sh.shards,
                sh.partitioner.name(),
                sh.cut_edges
            )?;
            for (s, stats) in sh.per_shard.iter().enumerate() {
                writeln!(
                    f,
                    "  shard {s}: {} owned node(s), {} internal + {}/{} cut edge(s), \
                     {} RIG entries",
                    stats.owned_nodes,
                    stats.internal_edges,
                    stats.cut_out,
                    stats.cut_in,
                    sh.rig_entries.get(s).copied().unwrap_or(0),
                )?;
            }
        }
        if self.empty_answer {
            writeln!(f, "order:    — (empty candidate set: answer is empty)")?;
        } else {
            let names: Vec<String> = self
                .order
                .iter()
                .map(|&q| match &self.vars {
                    Some(v) => v[q as usize].clone(),
                    None => format!("v{q}"),
                })
                .collect();
            writeln!(f, "order:    {:?} [{}]", self.order_kind, names.join(" → "))?;
        }
        writeln!(f, "count:    {}", self.count_strategy.describe)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorKind;
    use rig_mjoin::CountSink;
    use rig_query::EdgeKind;

    fn fig2_graph() -> DataGraph {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node_with_name(0, "A");
        }
        for _ in 0..4 {
            b.add_node_with_name(1, "B");
        }
        for _ in 0..3 {
            b.add_node_with_name(2, "C");
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    fn fig2_session() -> Session {
        Session::new(fig2_graph())
    }

    const FIG2_HPQL: &str = "MATCH (a:A)->(b:B)=>(c:C), (a)->(c)";

    #[test]
    fn text_and_builder_agree_through_the_session() {
        let session = fig2_session();
        let by_text = session.prepare(FIG2_HPQL).unwrap();
        let by_builder = session.prepare(rig_query::fig2_query()).unwrap();
        let (mut t1, o1) = by_text.run().collect_all();
        let (mut t2, o2) = by_builder.run().collect_all();
        t1.sort();
        t2.sort();
        assert_eq!(t1, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        assert_eq!(t1, t2);
        assert_eq!(o1.result.count, 2);
        assert_eq!(o2.result.count, 2);
        // identical canonical plans => the second prepare's run was a hit
        assert_eq!(session.cache_stats().misses, 1);
        assert_eq!(session.cache_stats().hits, 1);
    }

    #[test]
    fn second_execution_reuses_the_cached_rig() {
        let session = fig2_session();
        let p = session.prepare(FIG2_HPQL).unwrap();
        let cold = p.run().count();
        assert!(!cold.metrics.rig_from_cache);
        assert_eq!(cold.result.count, 2);
        let warm = p.run().count();
        assert!(warm.metrics.rig_from_cache);
        assert_eq!(warm.result.count, 2);
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // the cached stats still describe the same RIG
        assert_eq!(warm.metrics.rig_stats.node_count, cold.metrics.rig_stats.node_count);
    }

    #[test]
    fn no_cache_bypasses_and_capacity_zero_disables() {
        let session = fig2_session().cache_capacity(0);
        let p = session.prepare(FIG2_HPQL).unwrap();
        assert_eq!(p.run().count().result.count, 2);
        assert_eq!(p.run().count().result.count, 2);
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);

        let session = fig2_session();
        let p = session.prepare(FIG2_HPQL).unwrap();
        p.run().no_cache().count();
        p.run().no_cache().count();
        assert_eq!(session.cache_stats().hits, 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let session = fig2_session().cache_capacity(2);
        let a = session.prepare("MATCH (a:A)->(b:B)").unwrap();
        let b = session.prepare("MATCH (b:B)=>(c:C)").unwrap();
        let c = session.prepare("MATCH (a:A)=>(c:C)").unwrap();
        a.run().count(); // cache: [a]
        b.run().count(); // cache: [b, a]
        a.run().count(); // hit; cache: [a, b]
        c.run().count(); // evicts b; cache: [c, a]
        b.run().count(); // miss again
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn replace_graph_bumps_epoch_and_invalidates() {
        let mut session = fig2_session();
        {
            let p = session.prepare(FIG2_HPQL).unwrap();
            p.run().count();
            p.run().count();
            assert_eq!(session.cache_stats().hits, 1);
        }
        let epoch_before = session.epoch();
        // same graph content — but the swap must force a rebuild
        session.replace_graph(fig2_graph()).unwrap();
        assert_eq!(session.epoch(), epoch_before + 1);
        let p = session.prepare(FIG2_HPQL).unwrap();
        let outcome = p.run().count();
        assert!(!outcome.metrics.rig_from_cache);
        assert_eq!(outcome.result.count, 2);
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn prepare_validates() {
        let session = fig2_session();
        // disconnected
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        assert!(matches!(session.prepare(q), Err(Error::Validation(_))));
        // label out of range
        let mut q = PatternQuery::new(vec![0, 9]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let err = session.prepare(q).unwrap_err();
        assert!(matches!(err, Error::Validation(_)), "{err}");
        // unknown label name
        assert!(matches!(session.prepare("MATCH (a:A)->(x:Nope)"), Err(Error::Hpql(_))));
        // empty
        assert!(session.prepare("MATCH ;").is_err());
    }

    #[test]
    fn run_builder_knobs() {
        let session = fig2_session();
        let p = session.prepare(FIG2_HPQL).unwrap();
        let o = p.run().limit(1).count();
        assert_eq!(o.result.count, 1);
        assert!(o.result.limit_hit);
        assert!(matches!(p.run().limit(1).try_count(), Err(Error::Budget { .. })));
        for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            assert_eq!(p.run().order(order).count().result.count, 2, "{order:?}");
        }
        for threads in [2usize, 4] {
            assert_eq!(p.run().threads(threads).count().result.count, 2);
            let (tuples, _) = p.run().threads(threads).morsel(1).collect_all();
            assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        }
        let (tuples, _) = p.run().collect(1);
        assert_eq!(tuples.len(), 1);
        let mut sink = CountSink::default();
        assert_eq!(p.run().stream(&mut sink).result.count, 2);
        assert_eq!(sink.count, 2);
    }

    #[test]
    fn sharded_runs_match_single_graph_answers() {
        for shards in [1usize, 2, 4, 8] {
            for opts in [ShardOptions::hash(shards), ShardOptions::range(shards)] {
                let session = fig2_session();
                session.set_sharding(opts);
                let p = session.prepare(FIG2_HPQL).unwrap();
                let (tuples, outcome) = p.run().collect_all();
                assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]], "{opts:?}");
                assert_eq!(outcome.result.count, 2);
                assert!(!outcome.metrics.rig_from_cache);
                // warm run hits the sharded plan cache
                let warm = p.run().count();
                assert_eq!(warm.result.count, 2);
                assert!(warm.metrics.rig_from_cache, "{opts:?}");
                // stream feeds the sink the gathered (sorted) tuples
                let mut sink = CountSink::default();
                assert_eq!(p.run().stream(&mut sink).result.count, 2);
                assert_eq!(sink.count, 2);
                // budget knobs survive the cross-shard merge
                let limited = p.run().limit(1).count();
                assert_eq!(limited.result.count, 1);
                assert!(limited.result.limit_hit);
                let stats = session.sharding_stats().unwrap_or_else(|| {
                    unreachable!("sharding is enabled");
                });
                assert_eq!(stats.per_shard.len(), shards);
                assert_eq!(
                    stats.per_shard.iter().map(|s| s.owned_nodes).sum::<u64>(),
                    10,
                    "every node has exactly one owner"
                );
                let emitted: u64 = stats.per_shard.iter().map(|s| s.emitted).sum();
                assert!(emitted >= 2, "emit counters recorded");
            }
        }
    }

    #[test]
    fn sharded_commits_route_to_owner_shards() {
        let session = fig2_session();
        session.set_sharding(ShardOptions::range(4));
        let p = session.prepare(FIG2_HPQL).unwrap();
        assert_eq!(p.run().count().result.count, 2);
        // complete a third match (a=0, b=4, c=8): 0->4 already exists,
        // add 4->8 (satisfies b=>c) and the closing 0->8
        let mut txn = session.begin();
        txn.add_edge(4, 8);
        txn.add_edge(0, 8);
        session.commit(txn).unwrap();
        let (tuples, outcome) = p.run().collect_all();
        assert_eq!(tuples, vec![vec![0, 4, 8], vec![1, 3, 7], vec![2, 5, 9]]);
        // the refreshed plan was routed, not served stale from cache
        assert!(!outcome.metrics.rig_from_cache);
        // removing the edges restores the original answers
        let mut txn = session.begin();
        txn.remove_edge(4, 8);
        txn.remove_edge(0, 8);
        session.commit(txn).unwrap();
        let (tuples, _) = p.run().collect_all();
        assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]]);
    }

    #[test]
    fn sharded_node_commits_and_replace_graph_reset_the_store() {
        let mut session = fig2_session();
        session.set_sharding(ShardOptions::hash(3));
        let p = session.prepare(FIG2_HPQL).unwrap();
        assert_eq!(p.run().count().result.count, 2);
        // node commits change the id space: the store resets wholesale
        let mut txn = session.begin();
        let c = txn.add_named_node("C");
        txn.add_edge(1, c);
        txn.add_edge(3, c);
        session.commit(txn).unwrap();
        assert_eq!(p.run().count().result.count, 3);
        drop(p);
        session.replace_graph(fig2_graph()).unwrap();
        let p = session.prepare(FIG2_HPQL).unwrap();
        assert_eq!(p.run().count().result.count, 2);
        // sharding survives the swap (configuration, not state)
        assert!(session.sharding_stats().is_some());
    }

    #[test]
    fn sharded_explain_reports_partition_shape() {
        let session = fig2_session();
        session.set_sharding(ShardOptions::range(2));
        let p = session.prepare(FIG2_HPQL).unwrap();
        let explain = p.run().explain();
        let Some(sh) = &explain.shards else {
            unreachable!("sharded session explains its partition");
        };
        assert_eq!(sh.shards, 2);
        assert_eq!(sh.partitioner, Partitioner::Range);
        assert_eq!(sh.per_shard.len(), 2);
        assert!(!explain.count_strategy.eligible);
        let rendered = explain.to_string();
        assert!(rendered.contains("shards:   2 (range partitioning)"), "{rendered}");
        assert!(rendered.contains("shard 0:"), "{rendered}");
        // disabling sharding restores the single-graph explain
        session.clear_sharding();
        assert!(p.run().explain().shards.is_none());
    }

    #[test]
    fn stream_finishes_sink_on_empty_rig() {
        let session = fig2_session();
        // C -> A never occurs
        let mut q = PatternQuery::new(vec![2, 0]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let p = session.prepare(q).unwrap();
        struct FinishCounter(u32);
        impl ResultSink for FinishCounter {
            fn push(&mut self, _t: &[NodeId]) -> bool {
                true
            }
            fn finish(&mut self) {
                self.0 += 1;
            }
        }
        let mut sink = FinishCounter(0);
        let o = p.run().stream(&mut sink);
        assert_eq!(o.result.count, 0);
        assert_eq!(sink.0, 1);
        let (sinks, o) = p.run().threads(3).par_stream(|_| FinishCounter(0));
        assert_eq!(o.result.count, 0);
        assert_eq!(sinks.len(), 3);
        assert!(sinks.iter().all(|s| s.0 == 1));
    }

    #[test]
    fn explain_reports_reduction_and_cache_state() {
        let session = fig2_session();
        // A -> B => C plus the redundant A => C
        let p = session.prepare("MATCH (a:A)->(b:B)=>(c:C), (a)=>(c)").unwrap();
        let ex = p.run().explain();
        assert_eq!(ex.edges_reduced, 1);
        assert!(!ex.rig_from_cache);
        assert!(!ex.empty_answer);
        assert_eq!(ex.order.len(), 3);
        let shown = ex.to_string();
        assert!(shown.contains("reduced:"), "{shown}");
        assert!(shown.contains("built"), "{shown}");
        // explain populated the cache: a run right after is a hit
        let o = p.run().count();
        assert!(o.metrics.rig_from_cache);
        let ex2 = p.run().explain();
        assert!(ex2.rig_from_cache);
        assert!(ex2.to_string().contains("cached"));
    }

    #[test]
    fn equivalent_texts_share_one_plan() {
        let session = fig2_session();
        // same constraints and variable order, but a different chain
        // decomposition => different edge insertion order; the canonical
        // cache key unifies them
        let p1 = session.prepare("MATCH (a:A)->(b:B)=>(c:C), (a)->(c)").unwrap();
        let p2 = session.prepare("MATCH (a:A)->(b:B), (a)->(c:C), (b)=>(c)").unwrap();
        assert_ne!(p1.query(), p2.query(), "raw edge order differs");
        p1.run().count();
        p2.run().count();
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
        // renaming variables keeps the plan shared (names are not part of
        // the key); *reordering* them is a different query (tuple indexing)
        let p3 = session.prepare("MATCH (x:A)->(y:B)=>(z:C), (x)->(z)").unwrap();
        p3.run().count();
        assert_eq!(session.cache_stats().hits, 2);
        let p4 = session.prepare("MATCH (x:A)->(z:C), (x)->(y:B), (y)=>(z)").unwrap();
        p4.run().count();
        assert_eq!(session.cache_stats().misses, 2, "variable order is part of the plan");
    }

    // -- dynamic-graph tests -------------------------------------------------

    #[test]
    fn commit_updates_answers_without_replace() {
        let session = fig2_session();
        let p = session.prepare(FIG2_HPQL).unwrap();
        assert_eq!(p.run().count().result.count, 2);
        // wire a0 into the pattern: a0 -> b1 exists, b1 -> c? b1(4) -> c0(7)
        // exists... make a0 -> c0 direct to satisfy (a)->(c)
        let mut txn = session.begin();
        txn.add_edge(0, 7);
        let summary = session.commit(txn).unwrap();
        assert!(summary.structural);
        assert_eq!(summary.edges_added, 1);
        assert_eq!(p.run().count().result.count, 3);
        // and removing it brings the old answer back
        let mut txn = session.begin();
        txn.remove_edge(0, 7);
        session.commit(txn).unwrap();
        assert_eq!(p.run().count().result.count, 2);
    }

    #[test]
    fn commit_is_atomic_and_optimistic() {
        let session = fig2_session();
        let mut txn = session.begin();
        txn.add_edge(0, 7);
        txn.add_edge(0, 99); // invalid: no such node
        let before = session.store_stats();
        assert!(session.commit(txn).is_err());
        let after = session.store_stats();
        assert_eq!(before.version, after.version, "failed commit must not publish");
        assert!(!session.graph().has_edge(0, 7), "all-or-nothing");
        // optimistic concurrency: a commit in between invalidates the txn
        let stale = session.begin();
        let mut fresh = session.begin();
        fresh.add_edge(0, 7);
        session.commit(fresh).unwrap();
        assert!(matches!(session.commit(stale), Err(Error::Conflict { .. })), "write conflict");
    }

    #[test]
    fn added_nodes_and_labels_are_queryable() {
        let session = fig2_session();
        let mut txn = session.begin();
        let d = txn.add_named_node("D");
        txn.add_edge(0, d);
        session.commit(txn).unwrap();
        let p = session.prepare("MATCH (a:A)->(d:D)").unwrap();
        let (tuples, _) = p.run().collect_all();
        assert_eq!(tuples, vec![vec![0, 10]]);
        // snapshot label dictionary grew
        assert_eq!(session.graph().label_id("D"), Some(3));
    }

    #[test]
    fn snapshots_pin_a_consistent_view() {
        let session = fig2_session();
        let before = session.graph();
        let mut txn = session.begin();
        txn.remove_node(3); // b0
        session.commit(txn).unwrap();
        let after = session.graph();
        assert!(before.is_live(3), "old snapshot unaffected");
        assert!(!after.is_live(3));
        assert_eq!(before.num_edges(), 11);
        assert!(after.num_edges() < 11);
    }

    #[test]
    fn label_disjoint_plans_survive_commits() {
        let session = fig2_session();
        let ab = session.prepare("MATCH (a:A)->(b:B)").unwrap();
        let bc = session.prepare("MATCH (b:B)->(c:C)").unwrap();
        ab.run().count();
        bc.run().count();
        assert_eq!(session.cache_stats().entries, 2);
        // a commit touching only label C (c1 -> c2 edge) must invalidate
        // the B,C plan and keep the A,B plan cached
        let mut txn = session.begin();
        txn.add_edge(8, 9);
        let summary = session.commit(txn).unwrap();
        assert_eq!(summary.plans_invalidated, 1);
        assert_eq!(summary.plans_retained, 1);
        assert!(summary.touched_labels == vec![2]);
        let o = ab.run().count();
        assert!(o.metrics.rig_from_cache, "disjoint plan stayed hot");
        let o = bc.run().count();
        assert!(!o.metrics.rig_from_cache, "touched plan was rebuilt");
        assert_eq!(session.cache_stats().invalidated, 1);
    }

    #[test]
    fn reach_plans_invalidate_on_any_structural_commit() {
        let session = fig2_session();
        let reach = session.prepare("MATCH (a:A)=>(c:C)").unwrap();
        let direct = session.prepare("MATCH (a:A)->(b:B)").unwrap();
        reach.run().count();
        direct.run().count();
        // an edge between two C nodes shares no label with (a:A)->(b:B),
        // but can lengthen paths: the reachability plan must go
        let mut txn = session.begin();
        txn.add_edge(9, 8);
        let summary = session.commit(txn).unwrap();
        assert_eq!(summary.plans_invalidated, 1);
        assert!(!reach.run().count().metrics.rig_from_cache);
        assert!(direct.run().count().metrics.rig_from_cache);
        // a pure node addition is not structural: the reach plan (now
        // re-cached) survives a commit adding an isolated D node
        let mut txn = session.begin();
        txn.add_named_node("D");
        let summary = session.commit(txn).unwrap();
        assert!(!summary.structural);
        assert_eq!(summary.plans_invalidated, 0);
        assert!(reach.run().count().metrics.rig_from_cache);
    }

    #[test]
    fn dirty_snapshot_answers_match_materialized_rebuild() {
        let session = fig2_session();
        let mut txn = session.begin();
        let a3 = txn.add_named_node("A");
        let b4 = txn.add_named_node("B");
        txn.add_edge(a3, b4);
        txn.add_edge(b4, 9); // b4 -> c2
        txn.remove_node(5); // b2: kills the a2,b2,c2 occurrence
        session.commit(txn).unwrap();
        let p = session.prepare(FIG2_HPQL).unwrap();
        let (mut overlay_tuples, _) = p.run().collect_all();
        overlay_tuples.sort();
        // oracle: full rebuild from the materialized snapshot
        let rebuilt = Session::new(session.graph().materialize());
        let p2 = rebuilt.prepare(FIG2_HPQL).unwrap();
        let (mut rebuilt_tuples, _) = p2.run().collect_all();
        rebuilt_tuples.sort();
        assert_eq!(overlay_tuples, rebuilt_tuples);
        // parallel enumeration on the dirty snapshot agrees too
        let (mut par_tuples, _) = p.run().threads(4).morsel(1).collect_all();
        par_tuples.sort();
        assert_eq!(par_tuples, overlay_tuples);
    }

    #[test]
    fn compaction_triggers_and_preserves_semantics() {
        let session =
            Session::new(fig2_graph()).with_compaction(CompactionPolicy { min_ops: 3, ratio: 0.0 });
        let p = session.prepare(FIG2_HPQL).unwrap();
        assert_eq!(p.run().count().result.count, 2);
        let mut txn = session.begin();
        txn.add_edge(0, 7); // a0 -> c0: third occurrence
        let s1 = session.commit(txn).unwrap();
        assert!(!s1.compacted, "1 op < min_ops");
        let mut txn = session.begin();
        let x = txn.add_named_node("A");
        txn.add_edge(x, 3);
        let s2 = session.commit(txn).unwrap();
        assert!(s2.compacted, "3 ops >= min_ops");
        let stats = session.store_stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.delta_ops, 0, "delta folded into the base");
        assert_eq!(stats.base_nodes, 11);
        assert!(!session.graph().is_dirty());
        assert_eq!(p.run().count().result.count, 3, "same answers after compaction");
        // manual compaction on a clean store is a no-op
        assert!(!session.compact());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let session = std::sync::Arc::new(fig2_session());
        std::thread::scope(|s| {
            for _ in 0..3 {
                let session = std::sync::Arc::clone(&session);
                s.spawn(move || {
                    let p = session.prepare("MATCH (a:A)->(b:B)").unwrap();
                    for _ in 0..200 {
                        let n = p.run().count().result.count;
                        assert!(n >= 3, "fig2 has 3 A->B pairs; commits only add");
                    }
                });
            }
            let writer = std::sync::Arc::clone(&session);
            s.spawn(move || {
                for i in 0..50 {
                    let mut txn = writer.begin();
                    let a = txn.add_node(0);
                    let b = txn.add_node(1);
                    txn.add_edge(a, b);
                    assert!(txn.len() == 3 && !txn.is_empty());
                    writer.commit(txn).unwrap_or_else(|e| panic!("commit {i}: {e}"));
                }
            });
        });
        let p = session.prepare("MATCH (a:A)->(b:B)").unwrap();
        assert_eq!(p.run().count().result.count, 3 + 50);
    }

    #[test]
    fn apply_runs_parsed_mutation_ops() {
        let session = fig2_session();
        let script = rig_graph::parse_mutations("a v A\na e 10 3\n").unwrap();
        assert_eq!(script.len(), 1);
        let summary = session.apply(&script[0]).unwrap();
        assert_eq!(summary.nodes_added, 1);
        assert_eq!(summary.edges_added, 1);
        assert!(session.graph().has_edge(10, 3));
    }

    /// A dense single-label graph (every pair connected both ways) and a
    /// cyclic triangle query — worst case for both RIG expansion and the
    /// factorized DP's conditioning loop.
    fn dense_session(n: u32) -> Session {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node_with_name(0, "A");
        }
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
        Session::new(b.build())
    }

    const TRIANGLE: &str = "MATCH (a:A)->(b:A)->(c:A), (c)->(a)";

    /// Satellite regression: an already-expired deadline must surface as
    /// a timeout (budget exit path), never as an empty answer, and the
    /// aborted build must not be cached.
    #[test]
    fn expired_deadline_is_a_timeout_not_an_empty_answer() {
        let session = dense_session(24);
        let p = session.prepare(TRIANGLE).unwrap();

        let o = p.run().timeout(Duration::ZERO).count();
        assert!(o.result.timed_out, "zero budget must time out");
        assert!(o.metrics.rig_stats.timed_out, "the RIG build aborted");
        assert_eq!(o.result.count, 0);
        let err = p.run().timeout(Duration::ZERO).try_count().unwrap_err();
        assert!(matches!(err, Error::Budget { timed_out: true, .. }), "{err}");
        assert_eq!(session.cache_stats().entries, 0, "timed-out plans are never cached");

        // the same query with no budget completes and is cached
        let full = p.run().try_count().unwrap();
        assert!(!full.result.timed_out);
        assert_eq!(full.result.count, 24 * 23 * 22);
        assert_eq!(session.cache_stats().entries, 1);

        // a cached plan serves budgeted runs: enumeration gets the whole
        // budget and finishes this tiny instance comfortably
        let warm = p.run().timeout(Duration::from_secs(3600)).count();
        assert!(warm.metrics.rig_from_cache);
        assert_eq!(warm.result.count, 24 * 23 * 22);
    }

    /// Satellite regression: a store mutex poisoned by a panicked writer
    /// must surface as a typed `Error::Storage` (and be counted in
    /// `StoreStats::wal_flush_failures`), never as a second panic — a
    /// server worker hitting this would otherwise abort the process.
    #[test]
    fn flush_wal_reports_poisoned_store_instead_of_panicking() {
        let dir = std::env::temp_dir().join(format!("rig_session_poison_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::create_at(&dir, fig2_graph()).unwrap();
        assert!(session.is_durable());
        session.flush_wal().unwrap();
        assert_eq!(session.store_stats().wal_flush_failures, 0);
        // poison the store mutex: a thread panics while holding it
        let store = session.store.as_ref().unwrap();
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = store.lock().unwrap();
                panic!("poison the store lock");
            })
            .join()
        });
        assert!(poisoner.is_err(), "the poisoner must have panicked");
        let err = session.flush_wal().unwrap_err();
        assert!(matches!(err, Error::Storage(StorageError::Poisoned { .. })), "{err}");
        assert_eq!(session.store_stats().wal_flush_failures, 1);
        // commits degrade to typed errors too, never a worker-killing panic
        let mut txn = session.begin();
        txn.add_edge(0, 7);
        assert!(matches!(session.commit(txn), Err(Error::Storage(_))));
        drop(session); // Drop records (not swallows) the failed final flush
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The factorized terminal honors the deadline too: the DP's
    /// conditioning loop aborts and the summary says so instead of
    /// reporting a partial count.
    #[test]
    fn factorized_summary_times_out_cleanly() {
        let session = dense_session(24);
        let p = session.prepare(TRIANGLE).unwrap();
        let s = p.run().timeout(Duration::ZERO).factorized_summary();
        assert!(s.timed_out);
        assert_eq!(s.count, None, "a partial DP sum must not masquerade as the count");
        let full = p.run().factorized_summary();
        assert!(!full.timed_out);
        assert_eq!(full.count, Some(24 * 23 * 22));
        assert!(format!("{s}").contains("timed out"));
    }

    fn library_graph() -> DataGraph {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_name(0, "Author");
        let p = b.add_node_with_name(1, "Paper");
        let q = b.add_node_with_name(1, "Paper");
        b.add_edge(a, p);
        b.add_edge(p, q);
        b.build()
    }

    #[test]
    fn unknown_labels_get_a_did_you_mean_hint() {
        let session = Session::new(library_graph());
        let err = session.prepare("MATCH (a:Athor)->(p:Paper)").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse, "unknown names stay parse errors");
        let msg = err.to_string();
        assert!(msg.contains("did you mean 'Author'?"), "{msg}");
        // a name nowhere near the dictionary gets no hint
        let err = session.prepare("MATCH (x:Zebra)->(p:Paper)").unwrap_err();
        assert!(!err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn strict_lint_refuses_provably_empty_queries() {
        let session = Session::new(library_graph());
        // satisfiable: passes strict lint and prepares
        let (p, report) =
            session.prepare_with_lint("MATCH (a:Author)->(p:Paper)", LintMode::Strict).unwrap();
        assert!(!report.has_errors());
        assert_eq!(p.run().count().result.count, 1);
        // Paper -> Author never occurs: proven empty, refused with exit code 8
        let err =
            session.prepare_with_lint("MATCH (p:Paper)->(a:Author)", LintMode::Strict).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Analysis);
        assert_eq!(err.kind().exit_code(), 8);
        let Error::Analysis(report) = err else { panic!("expected Error::Analysis") };
        assert!(report.proven_empty());
        // warn mode lets the same query through (the engine counts 0)
        let (p, report) =
            session.prepare_with_lint("MATCH (p:Paper)->(a:Author)", LintMode::Warn).unwrap();
        assert!(report.proven_empty());
        assert_eq!(p.run().count().result.count, 0, "soundness: proven empty must count 0");
    }

    #[test]
    fn analysis_pair_counts_follow_commits() {
        let session = Session::new(library_graph());
        assert!(session.analyze("MATCH (p:Paper)->(a:Author)").proven_empty());
        // add a Paper -> Author edge: the proof must dissolve on the
        // dirty snapshot (cache invalidated, counts read the overlay)
        let mut txn = session.begin();
        txn.add_edge(1, 0);
        session.commit(txn).unwrap();
        let report = session.analyze("MATCH (p:Paper)->(a:Author)");
        assert!(!report.proven_empty(), "{}", report.render_compact());
        assert_eq!(
            session.prepare("MATCH (p:Paper)->(a:Author)").unwrap().run().count().result.count,
            1
        );
    }

    #[test]
    fn analysis_refutes_reachability_on_dirty_snapshots() {
        let session = Session::new(library_graph());
        // Author =*=> Paper holds on the base graph
        assert!(!session.analyze("MATCH (a:Author)=>(q:Paper)").proven_empty());
        // remove both edges: no Author can reach any Paper any more, and
        // the dirty-snapshot oracle (SnapshotReach) must see that
        let mut txn = session.begin();
        txn.remove_edge(0, 1);
        txn.remove_edge(1, 2);
        session.commit(txn).unwrap();
        let report = session.analyze("MATCH (a:Author)=>(q:Paper)");
        assert!(report.proven_empty(), "{}", report.render_compact());
        assert_eq!(
            session.prepare("MATCH (a:Author)=>(q:Paper)").unwrap().run().count().result.count,
            0
        );
    }
}
