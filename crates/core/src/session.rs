//! The `Session` API — the single front door to the GM pipeline.
//!
//! A [`Session`] owns a data graph, its BFL reachability index, and an LRU
//! cache of built RIGs (the per-query "plans" of this engine). Queries
//! enter as HPQL text (`MATCH (a:Author)->(p:Paper)=>(q:Paper)`) or as
//! hand-built [`PatternQuery`] values, are parsed / validated /
//! transitively reduced / canonicalized **once** by [`Session::prepare`],
//! and then execute any number of times through the [`Run`] builder:
//!
//! ```
//! use rig_core::Session;
//! use rig_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_named_node("Author");
//! let p = b.add_named_node("Paper");
//! let q = b.add_named_node("Paper");
//! b.add_edge(a, p);
//! b.add_edge(p, q);
//! let session = Session::new(b.build());
//!
//! let prepared = session.prepare("MATCH (a:Author)->(p:Paper)=>(q:Paper)").unwrap();
//! assert_eq!(prepared.run().count().result.count, 1);
//! // the second execution reuses the cached RIG
//! assert_eq!(prepared.run().count().result.count, 1);
//! assert_eq!(session.cache_stats().hits, 1);
//! ```
//!
//! The cache is keyed by `(canonical reduced query, RIG build options,
//! graph epoch)`; [`Session::replace_graph`] bumps the epoch, so plans
//! prepared against an older graph can never serve stale candidates.
//! Execution skips straight to MJoin on a hit — the selection + expansion
//! phases of Alg. 4 are not re-run (`GmMetrics::rig_from_cache` records
//! this per run).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rig_graph::{DataGraph, Label, NodeId};
use rig_index::{build_rig, Rig, RigOptions, RigStats};
use rig_mjoin::{compute_order, EnumOptions, EnumResult, ParOptions, ResultSink, SearchOrder};
use rig_query::{hpql, parse_hpql, transitive_reduction, PatternQuery, QNode};
use rig_reach::{BflIndex, Reachability};
use rig_sim::SimContext;

use crate::{Error, GmConfig, GmMetrics, QueryOutcome};

/// Default number of cached RIGs per session.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

// ---------------------------------------------------------------------------
// plan cache
// ---------------------------------------------------------------------------

#[derive(PartialEq, Eq)]
struct CacheKey {
    labels: Vec<Label>,
    edges: Vec<rig_query::PatternEdge>,
    opts: RigOptions,
    epoch: u64,
}

impl CacheKey {
    fn new(query: &PatternQuery, rig_opts: &RigOptions, epoch: u64) -> CacheKey {
        // build_threads is normalized out: the expansion phase is
        // bit-identical at every thread count (see docs/parallel.md), so
        // plans are shared across it.
        let opts = RigOptions { build_threads: 0, ..*rig_opts };
        CacheKey { labels: query.labels().to_vec(), edges: query.edges().to_vec(), opts, epoch }
    }
}

/// Tiny exact-LRU over a vec: entries ordered most- to least-recently
/// used. Capacities are small (default 64), so the linear scan is cheaper
/// than a linked-hash structure and keeps the code dependency-free.
struct PlanCache {
    capacity: usize,
    entries: Vec<(CacheKey, Arc<Rig>)>,
    evictions: u64,
}

impl PlanCache {
    fn get(&mut self, key: &CacheKey) -> Option<Arc<Rig>> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let rig = Arc::clone(&entry.1);
        self.entries.insert(0, entry);
        Some(rig)
    }

    fn insert(&mut self, key: CacheKey, rig: Arc<Rig>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, rig));
        while self.entries.len() > self.capacity {
            self.entries.pop();
            self.evictions += 1;
        }
    }
}

/// Plan-cache counters (see [`Session::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Executions served from a cached RIG.
    pub hits: u64,
    /// Executions that had to build their RIG.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Maximum resident plans.
    pub capacity: usize,
}

// ---------------------------------------------------------------------------
// session
// ---------------------------------------------------------------------------

/// A query session over one data graph: owns the graph, its reachability
/// index, and the RIG plan cache. See the [module docs](self) for a tour.
pub struct Session {
    graph: Arc<DataGraph>,
    bfl: BflIndex,
    config: GmConfig,
    epoch: u64,
    cache: Mutex<PlanCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Session {
    /// Opens a session on `graph` with the paper-default [`GmConfig`].
    /// Builds the BFL reachability index once (the per-graph setup cost of
    /// Fig. 18a); every prepared query reuses it.
    pub fn new(graph: impl Into<Arc<DataGraph>>) -> Session {
        Session::with_config(graph, GmConfig::default())
    }

    /// Opens a session with an explicit pipeline configuration (ablation
    /// knobs, simulation tuning, RIG build threads).
    pub fn with_config(graph: impl Into<Arc<DataGraph>>, config: GmConfig) -> Session {
        let graph = graph.into();
        let bfl = BflIndex::new(&graph);
        Session {
            graph,
            bfl,
            config,
            epoch: 0,
            cache: Mutex::new(PlanCache {
                capacity: DEFAULT_CACHE_CAPACITY,
                entries: Vec::new(),
                evictions: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Sets the plan-cache capacity (0 disables caching). Builder-style;
    /// call right after construction.
    pub fn cache_capacity(self, capacity: usize) -> Session {
        {
            let mut cache = self.cache.lock().unwrap();
            cache.capacity = capacity;
            while cache.entries.len() > capacity {
                cache.entries.pop();
                cache.evictions += 1;
            }
        }
        self
    }

    /// The session's data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The session's pipeline configuration.
    pub fn config(&self) -> &GmConfig {
        &self.config
    }

    /// The graph epoch: bumped by every [`Session::replace_graph`], part
    /// of every plan-cache key.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reachability-index construction time (Fig. 18a's "BFL" column).
    pub fn index_build_time(&self) -> Duration {
        Duration::from_secs_f64(self.bfl.build_seconds())
    }

    /// The concrete BFL index, for harnesses that drive RIG construction
    /// outside the session.
    pub fn bfl(&self) -> &BflIndex {
        &self.bfl
    }

    /// Swaps in a new graph: rebuilds the reachability index, bumps the
    /// epoch and drops every cached plan. Outstanding [`Prepared`] values
    /// cannot exist across this call (they borrow the session), so no plan
    /// prepared against the old graph can run against the new one.
    pub fn replace_graph(&mut self, graph: impl Into<Arc<DataGraph>>) {
        self.graph = graph.into();
        self.bfl = BflIndex::new(&self.graph);
        self.epoch += 1;
        self.cache.lock().unwrap().entries.clear();
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().unwrap().entries.clear();
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: cache.evictions,
            entries: cache.entries.len(),
            capacity: cache.capacity,
        }
    }

    /// Parses (HPQL text) or adopts (a [`PatternQuery`]) the query,
    /// validates it against the graph, applies §3 transitive reduction and
    /// canonicalizes the result. The returned [`Prepared`] executes any
    /// number of times via [`Prepared::run`]; repeated executions reuse
    /// the cached RIG.
    pub fn prepare<'s, Q: IntoPattern>(&'s self, source: Q) -> Result<Prepared<'s>, Error> {
        let (original, vars) = source.into_pattern(&self.graph)?;
        validate_pattern(&self.graph, &original, vars.as_deref())?;
        let red_start = Instant::now();
        let (reduced, edges_reduced) = if self.config.skip_reduction {
            (original.clone(), 0)
        } else {
            let r = transitive_reduction(&original);
            let removed = original.num_edges() - r.num_edges();
            (r, removed)
        };
        let exec = reduced.canonical();
        let reduction_time = red_start.elapsed();
        Ok(Prepared {
            session: self,
            original,
            exec,
            vars,
            edges_reduced,
            reduction_time,
            epoch: self.epoch,
        })
    }

    /// Looks up or builds the RIG for `prepared`. Returns the plan and
    /// whether it came from the cache. The cache lock is not held during
    /// the build, so two sessions' worth of concurrent misses on the same
    /// key build twice and the second insert wins — wasted work, never a
    /// wrong answer.
    fn rig_for(&self, prepared: &Prepared<'_>, use_cache: bool) -> (Arc<Rig>, bool) {
        let key = CacheKey::new(&prepared.exec, &self.config.rig, self.epoch);
        if use_cache {
            if let Some(rig) = self.cache.lock().unwrap().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (rig, true);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ctx = SimContext::new(&self.graph, &prepared.exec, &self.bfl);
        let rig = Arc::new(build_rig(&ctx, &self.bfl, &self.config.rig));
        if use_cache {
            self.cache.lock().unwrap().insert(key, Arc::clone(&rig));
        }
        (rig, false)
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("graph", &self.graph)
            .field("epoch", &self.epoch)
            .field("cache", &self.cache_stats())
            .finish()
    }
}

/// Validates a pattern against a graph: non-empty, connected, and every
/// label inside the graph's label space (labels with zero data nodes are
/// fine — they simply produce an empty answer). [`Session::prepare`] runs
/// this; front ends that hand patterns to non-Session engines (the CLI
/// baselines) call it directly so bad queries classify identically across
/// engines. `vars` supplies HPQL variable names for error messages.
pub fn validate_pattern(
    graph: &DataGraph,
    query: &PatternQuery,
    vars: Option<&[String]>,
) -> Result<(), Error> {
    if query.num_nodes() == 0 {
        return Err(Error::validation("query has no nodes"));
    }
    if !query.is_connected() {
        return Err(Error::validation(
            "query must be connected (every pattern node linked by some chain of edges)",
        ));
    }
    let num_labels = graph.num_labels() as Label;
    for (i, &l) in query.labels().iter().enumerate() {
        if l >= num_labels {
            let var = vars.map_or_else(|| format!("node {i}"), |v| v[i].clone());
            return Err(Error::validation(format!(
                "label id {l} of {var} is outside the graph's label space \
                 (graph has labels 0..{num_labels})"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// query sources
// ---------------------------------------------------------------------------

/// Anything [`Session::prepare`] accepts: HPQL text, a pre-parsed
/// [`rig_query::HpqlQuery`], or a hand-built [`PatternQuery`].
pub trait IntoPattern {
    /// Produces the pattern plus its variable names (text sources only).
    fn into_pattern(self, graph: &DataGraph) -> Result<(PatternQuery, Option<Vec<String>>), Error>;
}

impl IntoPattern for &str {
    fn into_pattern(self, graph: &DataGraph) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        parse_hpql(self)?.into_pattern(graph)
    }
}

impl IntoPattern for &String {
    fn into_pattern(self, graph: &DataGraph) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        self.as_str().into_pattern(graph)
    }
}

impl IntoPattern for rig_query::HpqlQuery {
    fn into_pattern(self, graph: &DataGraph) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        let resolved = self.resolve(|name| graph.label_id(name))?;
        Ok((resolved.query, Some(resolved.vars)))
    }
}

impl IntoPattern for PatternQuery {
    fn into_pattern(
        self,
        _graph: &DataGraph,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        Ok((self, None))
    }
}

impl IntoPattern for &PatternQuery {
    fn into_pattern(
        self,
        _graph: &DataGraph,
    ) -> Result<(PatternQuery, Option<Vec<String>>), Error> {
        Ok((self.clone(), None))
    }
}

// ---------------------------------------------------------------------------
// prepared queries
// ---------------------------------------------------------------------------

/// A parsed, validated, reduced and canonicalized query, bound to its
/// [`Session`]. Create with [`Session::prepare`]; execute with
/// [`Prepared::run`].
pub struct Prepared<'s> {
    session: &'s Session,
    original: PatternQuery,
    /// The query the engine runs: transitively reduced + canonical edge
    /// order. Node ids match `original` (they index occurrence tuples).
    exec: PatternQuery,
    vars: Option<Vec<String>>,
    edges_reduced: usize,
    reduction_time: Duration,
    epoch: u64,
}

impl<'s> Prepared<'s> {
    /// The session this plan belongs to.
    pub fn session(&self) -> &'s Session {
        self.session
    }

    /// The query as given (before reduction).
    pub fn query(&self) -> &PatternQuery {
        &self.original
    }

    /// The reduced, canonical query the engine executes.
    pub fn reduced(&self) -> &PatternQuery {
        &self.exec
    }

    /// Variable names (parallel to pattern node ids / occurrence-tuple
    /// positions) when the query came from HPQL text.
    pub fn vars(&self) -> Option<&[String]> {
        self.vars.as_deref()
    }

    /// Reachability edges removed by §3 transitive reduction.
    pub fn edges_reduced(&self) -> usize {
        self.edges_reduced
    }

    /// Pretty-prints the *reduced* query as HPQL (label names resolved
    /// through the graph's dictionary where present).
    pub fn to_hpql(&self) -> String {
        self.render(&self.exec)
    }

    /// Pretty-prints the query *as given* as HPQL.
    pub fn original_hpql(&self) -> String {
        self.render(&self.original)
    }

    fn render(&self, q: &PatternQuery) -> String {
        let g = self.session.graph();
        hpql::to_hpql(q, self.vars.as_deref(), |l| {
            let name = g.label_name(l);
            (!name.is_empty()).then(|| name.to_string())
        })
    }

    /// Starts building an execution of this plan.
    pub fn run(&self) -> Run<'_, 's> {
        Run {
            prepared: self,
            opts: self.session.config.enumeration,
            threads: 1,
            morsel: None,
            use_cache: true,
        }
    }
}

impl std::fmt::Debug for Prepared<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("hpql", &self.to_hpql())
            .field("edges_reduced", &self.edges_reduced)
            .field("epoch", &self.epoch)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// run builder
// ---------------------------------------------------------------------------

/// Fluent execution builder:
/// `prepared.run().limit(10).timeout(d).threads(4).count()`.
///
/// Defaults come from the session's `GmConfig::enumeration`; every knob
/// here overrides per run. Terminal methods: [`Run::count`],
/// [`Run::collect`], [`Run::collect_all`], [`Run::stream`],
/// [`Run::par_stream`], [`Run::explain`].
#[must_use = "a Run does nothing until a terminal method (count/collect/stream/explain) is called"]
pub struct Run<'a, 's> {
    prepared: &'a Prepared<'s>,
    opts: EnumOptions,
    threads: usize,
    morsel: Option<usize>,
    use_cache: bool,
}

impl<'a, 's> Run<'a, 's> {
    /// Stop after `k` occurrences (exact under parallelism; the run
    /// reports `limit_hit`).
    pub fn limit(mut self, k: u64) -> Self {
        self.opts.limit = Some(k);
        self
    }

    /// Wall-clock budget for the enumeration phase.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.opts.timeout = Some(d);
        self
    }

    /// Search-order strategy (§5.2).
    pub fn order(mut self, order: SearchOrder) -> Self {
        self.opts.order = order;
        self
    }

    /// Enforce injectivity (isomorphism-style matching).
    pub fn injective(mut self, injective: bool) -> Self {
        self.opts.injective = injective;
        self
    }

    /// Morsel-driven parallel enumeration with `n` workers (1 =
    /// sequential).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Morsel size for the parallel engine (positions claimed per cursor
    /// bump).
    pub fn morsel(mut self, morsel: usize) -> Self {
        self.morsel = Some(morsel.max(1));
        self
    }

    /// Bypass the plan cache for this run (the RIG is rebuilt and not
    /// stored) — benchmarking cold paths, mostly.
    pub fn no_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    fn par_options(&self) -> ParOptions {
        let mut par = ParOptions::with_threads(self.threads);
        if let Some(m) = self.morsel {
            par.morsel = m;
        }
        par
    }

    fn execute(
        self,
        engine: impl FnOnce(&PatternQuery, &Rig, &EnumOptions) -> EnumResult,
    ) -> QueryOutcome {
        let total_start = Instant::now();
        let (rig, from_cache) = self.prepared.session.rig_for(self.prepared, self.use_cache);
        let enum_start = Instant::now();
        let result = if rig.is_empty() {
            EnumResult::empty(Vec::new())
        } else {
            engine(&self.prepared.exec, &rig, &self.opts)
        };
        let enumeration_time = enum_start.elapsed();
        let metrics = GmMetrics {
            reduction_time: self.prepared.reduction_time,
            rig_stats: rig.stats.clone(),
            enumeration_time,
            total_time: total_start.elapsed(),
            edges_reduced: self.prepared.edges_reduced,
            rig_from_cache: from_cache,
        };
        QueryOutcome { result, metrics }
    }

    /// Counts the occurrences.
    pub fn count(self) -> QueryOutcome {
        let threads = self.threads;
        let par = self.par_options();
        self.execute(|q, rig, opts| {
            if threads > 1 {
                rig_mjoin::par_count_with(q, rig, opts, &par)
            } else {
                rig_mjoin::count(q, rig, opts)
            }
        })
    }

    /// Like [`Run::count`] but errs with [`Error::Budget`] when the limit
    /// or timeout truncated the answer.
    pub fn try_count(self) -> Result<QueryOutcome, Error> {
        self.count().require_complete()
    }

    /// Collects up to `max` occurrence tuples (indexed by pattern node
    /// id). Parallel runs return the tuples sorted (deterministic across
    /// schedules); sequential runs return enumeration order.
    pub fn collect(mut self, max: usize) -> (Vec<Vec<NodeId>>, QueryOutcome) {
        // cap enumeration at `max` unless a tighter limit is already set
        if self.opts.limit.is_none_or(|l| l > max as u64) {
            self.opts.limit = Some(max as u64);
        }
        let threads = self.threads;
        let par = self.par_options();
        let mut tuples = Vec::new();
        let outcome = self.execute(|q, rig, opts| {
            if threads > 1 {
                let (t, r) = rig_mjoin::par_collect_sorted(q, rig, opts, &par);
                tuples = t;
                r
            } else {
                let (t, r) = rig_mjoin::collect(q, rig, opts, max);
                tuples = t;
                r
            }
        });
        (tuples, outcome)
    }

    /// Collects every occurrence tuple (honors an explicit
    /// [`Run::limit`]).
    pub fn collect_all(self) -> (Vec<Vec<NodeId>>, QueryOutcome) {
        let max = self.opts.limit.map_or(usize::MAX, |l| l as usize);
        self.collect(max)
    }

    /// Streams every occurrence into `sink` on the calling thread
    /// (ignores [`Run::threads`] — parallel streaming needs per-worker
    /// sinks, see [`Run::par_stream`]).
    pub fn stream<S: ResultSink>(self, sink: &mut S) -> QueryOutcome {
        let mut ran = false;
        let outcome = self.execute(|q, rig, opts| {
            ran = true;
            rig_mjoin::enumerate_sink(q, rig, opts, sink)
        });
        if !ran {
            // empty-RIG short circuit: the sink contract (finish exactly
            // once per run) must still hold
            sink.finish();
        }
        outcome
    }

    /// Parallel streaming: `make_sink(worker)` builds one sink per
    /// worker; returns the sinks (all finished) with the outcome.
    pub fn par_stream<S, F>(self, make_sink: F) -> (Vec<S>, QueryOutcome)
    where
        S: ResultSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        let par = self.par_options();
        let mut sinks = Vec::new();
        let outcome = self.execute(|q, rig, opts| {
            let (s, r) = rig_mjoin::par_enumerate(q, rig, opts, &par, &make_sink);
            sinks = s;
            r
        });
        if sinks.is_empty() {
            // empty-RIG short circuit: hand back one finished sink per
            // worker so callers can merge uniformly
            sinks = (0..par.threads.max(1))
                .map(|w| {
                    let mut s = make_sink(w);
                    s.finish();
                    s
                })
                .collect();
        }
        (sinks, outcome)
    }

    /// Explains the plan without enumerating: the reduced query, whether
    /// its RIG came from the cache, the RIG statistics and the search
    /// order MJoin would use.
    pub fn explain(self) -> Explain {
        let prepared = self.prepared;
        let (rig, from_cache) = prepared.session.rig_for(prepared, self.use_cache);
        let order = if rig.is_empty() {
            Vec::new()
        } else {
            compute_order(&prepared.exec, &rig, self.opts.order)
        };
        Explain {
            hpql: prepared.original_hpql(),
            reduced_hpql: prepared.to_hpql(),
            edges_reduced: prepared.edges_reduced,
            rig_stats: rig.stats.clone(),
            rig_from_cache: from_cache,
            empty_answer: rig.is_empty(),
            order_kind: self.opts.order,
            order,
            vars: prepared.vars.clone(),
        }
    }
}

/// Plan description produced by [`Run::explain`] (and the CLI's `explain`
/// mode).
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query as given, pretty-printed as HPQL.
    pub hpql: String,
    /// The transitively reduced, canonical query the engine executes.
    pub reduced_hpql: String,
    /// Reachability edges removed by the reduction.
    pub edges_reduced: usize,
    /// Statistics of the (possibly cached) RIG.
    pub rig_stats: RigStats,
    /// True when the RIG came from the session's plan cache.
    pub rig_from_cache: bool,
    /// True when some candidate set is empty — the answer is empty and
    /// enumeration would be skipped entirely.
    pub empty_answer: bool,
    /// Search-order strategy that would drive MJoin.
    pub order_kind: SearchOrder,
    /// The concrete node order (empty when `empty_answer`).
    pub order: Vec<QNode>,
    /// Variable names, when the query came from HPQL.
    pub vars: Option<Vec<String>>,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query:    {}", self.hpql)?;
        writeln!(f, "reduced:  {} ({} edge(s) removed)", self.reduced_hpql, self.edges_reduced)?;
        writeln!(
            f,
            "RIG:      {} nodes / {} edges ({}, {} sim passes, {} pruned)",
            self.rig_stats.node_count,
            self.rig_stats.edge_count,
            if self.rig_from_cache { "cached" } else { "built" },
            self.rig_stats.sim_passes,
            self.rig_stats.pruned,
        )?;
        if self.empty_answer {
            writeln!(f, "order:    — (empty candidate set: answer is empty)")?;
        } else {
            let names: Vec<String> = self
                .order
                .iter()
                .map(|&q| match &self.vars {
                    Some(v) => v[q as usize].clone(),
                    None => format!("v{q}"),
                })
                .collect();
            writeln!(f, "order:    {:?} [{}]", self.order_kind, names.join(" → "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_mjoin::CountSink;
    use rig_query::EdgeKind;

    fn fig2_session() -> Session {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node_with_name(0, "A");
        }
        for _ in 0..4 {
            b.add_node_with_name(1, "B");
        }
        for _ in 0..3 {
            b.add_node_with_name(2, "C");
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        Session::new(b.build())
    }

    const FIG2_HPQL: &str = "MATCH (a:A)->(b:B)=>(c:C), (a)->(c)";

    #[test]
    fn text_and_builder_agree_through_the_session() {
        let session = fig2_session();
        let by_text = session.prepare(FIG2_HPQL).unwrap();
        let by_builder = session.prepare(rig_query::fig2_query()).unwrap();
        let (mut t1, o1) = by_text.run().collect_all();
        let (mut t2, o2) = by_builder.run().collect_all();
        t1.sort();
        t2.sort();
        assert_eq!(t1, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        assert_eq!(t1, t2);
        assert_eq!(o1.result.count, 2);
        assert_eq!(o2.result.count, 2);
        // identical canonical plans => the second prepare's run was a hit
        assert_eq!(session.cache_stats().misses, 1);
        assert_eq!(session.cache_stats().hits, 1);
    }

    #[test]
    fn second_execution_reuses_the_cached_rig() {
        let session = fig2_session();
        let p = session.prepare(FIG2_HPQL).unwrap();
        let cold = p.run().count();
        assert!(!cold.metrics.rig_from_cache);
        assert_eq!(cold.result.count, 2);
        let warm = p.run().count();
        assert!(warm.metrics.rig_from_cache);
        assert_eq!(warm.result.count, 2);
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // the cached stats still describe the same RIG
        assert_eq!(warm.metrics.rig_stats.node_count, cold.metrics.rig_stats.node_count);
    }

    #[test]
    fn no_cache_bypasses_and_capacity_zero_disables() {
        let session = fig2_session().cache_capacity(0);
        let p = session.prepare(FIG2_HPQL).unwrap();
        assert_eq!(p.run().count().result.count, 2);
        assert_eq!(p.run().count().result.count, 2);
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);

        let session = fig2_session();
        let p = session.prepare(FIG2_HPQL).unwrap();
        p.run().no_cache().count();
        p.run().no_cache().count();
        assert_eq!(session.cache_stats().hits, 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let session = fig2_session().cache_capacity(2);
        let a = session.prepare("MATCH (a:A)->(b:B)").unwrap();
        let b = session.prepare("MATCH (b:B)=>(c:C)").unwrap();
        let c = session.prepare("MATCH (a:A)=>(c:C)").unwrap();
        a.run().count(); // cache: [a]
        b.run().count(); // cache: [b, a]
        a.run().count(); // hit; cache: [a, b]
        c.run().count(); // evicts b; cache: [c, a]
        b.run().count(); // miss again
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn replace_graph_bumps_epoch_and_invalidates() {
        let mut session = fig2_session();
        {
            let p = session.prepare(FIG2_HPQL).unwrap();
            p.run().count();
            p.run().count();
            assert_eq!(session.cache_stats().hits, 1);
        }
        let epoch_before = session.epoch();
        // same graph content — but the epoch bump must force a rebuild
        session.replace_graph(fig2_session().graph().clone());
        assert_eq!(session.epoch(), epoch_before + 1);
        let p = session.prepare(FIG2_HPQL).unwrap();
        let outcome = p.run().count();
        assert!(!outcome.metrics.rig_from_cache);
        assert_eq!(outcome.result.count, 2);
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn prepare_validates() {
        let session = fig2_session();
        // disconnected
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        assert!(matches!(session.prepare(q), Err(Error::Validation(_))));
        // label out of range
        let mut q = PatternQuery::new(vec![0, 9]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let err = session.prepare(q).unwrap_err();
        assert!(matches!(err, Error::Validation(_)), "{err}");
        // unknown label name
        assert!(matches!(session.prepare("MATCH (a:A)->(x:Nope)"), Err(Error::Hpql(_))));
        // empty
        assert!(session.prepare("MATCH ;").is_err());
    }

    #[test]
    fn run_builder_knobs() {
        let session = fig2_session();
        let p = session.prepare(FIG2_HPQL).unwrap();
        let o = p.run().limit(1).count();
        assert_eq!(o.result.count, 1);
        assert!(o.result.limit_hit);
        assert!(matches!(p.run().limit(1).try_count(), Err(Error::Budget { .. })));
        for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            assert_eq!(p.run().order(order).count().result.count, 2, "{order:?}");
        }
        for threads in [2usize, 4] {
            assert_eq!(p.run().threads(threads).count().result.count, 2);
            let (tuples, _) = p.run().threads(threads).morsel(1).collect_all();
            assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        }
        let (tuples, _) = p.run().collect(1);
        assert_eq!(tuples.len(), 1);
        let mut sink = CountSink::default();
        assert_eq!(p.run().stream(&mut sink).result.count, 2);
        assert_eq!(sink.count, 2);
    }

    #[test]
    fn stream_finishes_sink_on_empty_rig() {
        let session = fig2_session();
        // C -> A never occurs
        let mut q = PatternQuery::new(vec![2, 0]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let p = session.prepare(q).unwrap();
        struct FinishCounter(u32);
        impl ResultSink for FinishCounter {
            fn push(&mut self, _t: &[NodeId]) -> bool {
                true
            }
            fn finish(&mut self) {
                self.0 += 1;
            }
        }
        let mut sink = FinishCounter(0);
        let o = p.run().stream(&mut sink);
        assert_eq!(o.result.count, 0);
        assert_eq!(sink.0, 1);
        let (sinks, o) = p.run().threads(3).par_stream(|_| FinishCounter(0));
        assert_eq!(o.result.count, 0);
        assert_eq!(sinks.len(), 3);
        assert!(sinks.iter().all(|s| s.0 == 1));
    }

    #[test]
    fn explain_reports_reduction_and_cache_state() {
        let session = fig2_session();
        // A -> B => C plus the redundant A => C
        let p = session.prepare("MATCH (a:A)->(b:B)=>(c:C), (a)=>(c)").unwrap();
        let ex = p.run().explain();
        assert_eq!(ex.edges_reduced, 1);
        assert!(!ex.rig_from_cache);
        assert!(!ex.empty_answer);
        assert_eq!(ex.order.len(), 3);
        let shown = ex.to_string();
        assert!(shown.contains("reduced:"), "{shown}");
        assert!(shown.contains("built"), "{shown}");
        // explain populated the cache: a run right after is a hit
        let o = p.run().count();
        assert!(o.metrics.rig_from_cache);
        let ex2 = p.run().explain();
        assert!(ex2.rig_from_cache);
        assert!(ex2.to_string().contains("cached"));
    }

    #[test]
    fn equivalent_texts_share_one_plan() {
        let session = fig2_session();
        // same constraints and variable order, but a different chain
        // decomposition => different edge insertion order; the canonical
        // cache key unifies them
        let p1 = session.prepare("MATCH (a:A)->(b:B)=>(c:C), (a)->(c)").unwrap();
        let p2 = session.prepare("MATCH (a:A)->(b:B), (a)->(c:C), (b)=>(c)").unwrap();
        assert_ne!(p1.query(), p2.query(), "raw edge order differs");
        p1.run().count();
        p2.run().count();
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
        // renaming variables keeps the plan shared (names are not part of
        // the key); *reordering* them is a different query (tuple indexing)
        let p3 = session.prepare("MATCH (x:A)->(y:B)=>(z:C), (x)->(z)").unwrap();
        p3.run().count();
        assert_eq!(session.cache_stats().hits, 2);
        let p4 = session.prepare("MATCH (x:A)->(z:C), (x)->(y:B), (y)=>(z)").unwrap();
        p4.run().count();
        assert_eq!(session.cache_stats().misses, 2, "variable order is part of the plan");
    }
}
