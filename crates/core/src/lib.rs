//! GM — the end-to-end RIG-based hybrid graph pattern matcher (the paper's
//! primary contribution, integrating §3–§6).
//!
//! The pipeline behind every [`Session`] execution:
//!
//! 1. **transitive reduction** of the query (§3) — drop redundant
//!    reachability edges;
//! 2. **node selection** — pre-filter + double simulation (§4.2–§4.4);
//! 3. **node expansion** — build the refined RIG (§4.5); an empty RIG
//!    short-circuits to an empty answer;
//! 4. **search ordering** — JO / RI / BJ over RIG statistics (§5.2);
//! 5. **enumeration** — MJoin multiway intersections (§5.1).
//!
//! Every §7.4 ablation is a [`GmConfig`] knob, so the experiment harnesses
//! run the same code paths the library's users do.
//!
//! The application API is the [`Session`] (see [`session`]): it owns the
//! versioned graph store (base CSR + delta overlay) and its reachability
//! index, accepts queries as HPQL text or [`PatternQuery`] values, caches
//! built RIGs across executions, and takes live mutations through
//! [`GraphTxn`] / [`Session::commit`] with label-aware plan invalidation.

mod error;
pub mod factorized;
mod report;
pub mod session;

pub use error::{Error, ErrorKind};
pub use report::{RunReport, RunStatus};
pub use session::{
    validate_pattern, CacheStats, CommitSummary, CompactionPolicy, Explain, GraphTxn, IntoPattern,
    LintMode, Prepared, Run, Session, ShardCounters, ShardExplain, ShardingStats, StoreStats,
};

// the static-analysis surface (see `rig_analyze`): front ends render
// `Report`s returned by `Session::analyze` / carried by `Error::Analysis`
pub use rig_analyze::{Analyzer, AnalyzerConfig, Code, Diagnostic, Report, Severity};

use std::time::Duration;

use rig_index::{RigOptions, RigStats};
use rig_mjoin::{EnumOptions, EnumResult};
use rig_query::PatternQuery;

/// Full GM configuration. `Default` is the paper's evaluation setup.
#[derive(Debug, Clone, Copy, Default)]
pub struct GmConfig {
    /// Apply §3 transitive reduction before evaluation (`false` = GM-NR).
    pub skip_reduction: bool,
    /// RIG construction options (selection mode, simulation tuning,
    /// expansion mode).
    pub rig: RigOptions,
    /// Enumeration options (search order, limit, timeout, injectivity).
    pub enumeration: EnumOptions,
}

impl GmConfig {
    /// Exact-simulation configuration (no pass cap); used by tests.
    pub fn exact() -> Self {
        GmConfig { rig: RigOptions::exact(), ..Default::default() }
    }
}

/// Phase timings and sizes for one query evaluation.
#[derive(Debug, Clone)]
pub struct GmMetrics {
    /// Query transitive-reduction time.
    pub reduction_time: Duration,
    /// Node selection + expansion (the paper's "matching time" includes
    /// this plus ordering).
    pub rig_stats: RigStats,
    /// Result enumeration time (includes search-order computation, which
    /// is part of MJoin).
    pub enumeration_time: Duration,
    /// End-to-end evaluation time (excludes reachability-index build,
    /// which is per-graph, reported by [`Session::index_build_time`]).
    pub total_time: Duration,
    /// Reachability edges removed by the reduction.
    pub edges_reduced: usize,
    /// True when the RIG was served from a [`Session`] plan cache: the
    /// selection + expansion phases were skipped and `rig_stats` carries
    /// the timings recorded when the plan was originally built.
    pub rig_from_cache: bool,
    /// True when a [`Run::count`](session::Run::count) was answered by the
    /// factorized DP (see [`factorized`]) instead of tuple enumeration.
    pub counted_via_factorization: bool,
}

impl GmMetrics {
    /// "Matching time" in the paper's Metrics paragraph: everything before
    /// enumeration starts.
    pub fn matching_time(&self) -> Duration {
        self.total_time.saturating_sub(self.enumeration_time)
    }
}

/// Result of one query evaluation.
#[derive(Debug)]
pub struct QueryOutcome {
    pub result: EnumResult,
    pub metrics: GmMetrics,
}

impl QueryOutcome {
    /// Errs with [`Error::Budget`] when the match limit or timeout
    /// truncated the answer; otherwise passes the outcome through. The
    /// strict form behind `Run::try_count` and the CLI's `--strict` flag.
    pub fn require_complete(self) -> Result<QueryOutcome, Error> {
        if self.result.timed_out || self.result.limit_hit {
            Err(Error::Budget {
                timed_out: self.result.timed_out,
                limit_hit: self.result.limit_hit,
            })
        } else {
            Ok(self)
        }
    }

    /// Converts to the engine-neutral report used by the harnesses.
    pub fn report(&self, engine: &str) -> RunReport {
        RunReport {
            engine: engine.to_string(),
            status: if self.result.timed_out { RunStatus::Timeout } else { RunStatus::Completed },
            occurrences: self.result.count,
            total_time: self.metrics.total_time,
            matching_time: self.metrics.matching_time(),
            enumeration_time: self.metrics.enumeration_time,
            intermediate_tuples: 0, // MJoin materializes none (§5.1)
            aux_size: self.metrics.rig_stats.size(),
        }
    }
}

/// Convenience for harnesses: evaluate `query` on `graph` once through a
/// throwaway [`Session`] with `cfg`. Prefer a long-lived session when the
/// graph is reused — it keeps the BFL index and plan cache warm.
pub fn evaluate_once(
    graph: &rig_graph::DataGraph,
    query: &PatternQuery,
    cfg: &GmConfig,
) -> Result<QueryOutcome, Error> {
    let session = Session::with_config(graph.clone(), *cfg);
    let prepared = session.prepare(query)?;
    Ok(prepared.run().count())
}

// re-export the pieces users need to drive the matcher without digging
// through sub-crates
pub use rig_index::{ReachExpandMode, RigOptions as RigBuildOptions, SelectMode};
pub use rig_mjoin::{
    BatchSink, CollectSink, CountSink, EnumOptions as EnumerationOptions, FirstKSink, FnSink,
    ParOptions, ResultSink, SearchOrder,
};
pub use rig_shard::{Partitioner, ShardOptions, ShardStats, MAX_SHARDS};
pub use rig_sim::{DirectCheckMode, ReachCheckMode, SimAlgorithm, SimOptions};
pub use rig_storage::{
    Durability, FsBackend, MemBackend, RecoveryReport, StorageBackend, StorageError, StoreOptions,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::DataGraph;
    use rig_mjoin::EnumOptions;
    use rig_query::{fig2_query, EdgeKind, PatternQuery};

    fn fig2_graph() -> DataGraph {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    #[test]
    fn end_to_end_fig2() {
        let session = Session::with_config(fig2_graph(), GmConfig::exact());
        let p = session.prepare(fig2_query()).unwrap();
        let (tuples, outcome) = p.run().collect(10);
        let mut sorted = tuples;
        sorted.sort();
        assert_eq!(sorted, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        assert_eq!(outcome.result.count, 2);
        let report = outcome.report("GM");
        assert_eq!(report.status, RunStatus::Completed);
        assert_eq!(report.occurrences, 2);
        assert_eq!(report.intermediate_tuples, 0);
    }

    #[test]
    fn reduction_removes_redundant_reachability_edge() {
        // add redundant A => C on top of A -> B => C
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        q.add_edge(0, 2, EdgeKind::Reachability); // redundant
        let g = fig2_graph();
        let with = evaluate_once(&g, &q, &GmConfig::exact()).unwrap();
        assert_eq!(with.metrics.edges_reduced, 1);
        let without =
            evaluate_once(&g, &q, &GmConfig { skip_reduction: true, ..GmConfig::exact() }).unwrap();
        assert_eq!(without.metrics.edges_reduced, 0);
        // identical answers either way (equivalence of the reduction)
        assert_eq!(with.result.count, without.result.count);
    }

    #[test]
    fn limit_and_timeout_paths() {
        let cfg = GmConfig {
            enumeration: EnumOptions { limit: Some(1), ..Default::default() },
            ..GmConfig::exact()
        };
        let o = evaluate_once(&fig2_graph(), &fig2_query(), &cfg).unwrap();
        assert_eq!(o.result.count, 1);
        assert!(o.result.limit_hit);
    }

    #[test]
    fn empty_answer_short_circuits() {
        // label 2 -> label 0 direct edge never occurs
        let mut q = PatternQuery::new(vec![2, 0]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let o = evaluate_once(&fig2_graph(), &q, &GmConfig::exact()).unwrap();
        assert_eq!(o.result.count, 0);
        assert_eq!(o.metrics.rig_stats.node_count, 0);
    }

    #[test]
    fn three_pass_default_equals_exact_count() {
        // the §4.5 approximation changes the RIG, never the answer
        let g = fig2_graph();
        let exact = evaluate_once(&g, &fig2_query(), &GmConfig::exact()).unwrap();
        let capped = evaluate_once(&g, &fig2_query(), &GmConfig::default()).unwrap();
        assert_eq!(exact.result.count, capped.result.count);
    }

    #[test]
    fn parallel_session_agrees_with_sequential() {
        let session = Session::with_config(fig2_graph(), GmConfig::exact());
        let p = session.prepare(fig2_query()).unwrap();
        let seq = p.run().count();
        for threads in [2usize, 8] {
            let par = p.run().threads(threads).count();
            assert_eq!(par.result.count, seq.result.count, "threads={threads}");
        }
        let (sinks, outcome) = p.run().threads(3).morsel(1).par_stream(|_| CollectSink::default());
        let mut tuples: Vec<Vec<rig_graph::NodeId>> =
            sinks.into_iter().flat_map(|s| s.tuples).collect();
        tuples.sort();
        assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        assert_eq!(outcome.result.count, 2);
    }

    #[test]
    fn parallel_limit_is_enforced_not_fallen_back() {
        let session = Session::with_config(fig2_graph(), GmConfig::exact());
        let p = session.prepare(fig2_query()).unwrap();
        let o = p.run().threads(4).limit(1).count();
        assert_eq!(o.result.count, 1);
        assert!(o.result.limit_hit);
    }

    #[test]
    fn all_search_orders_agree_end_to_end() {
        let session = Session::with_config(fig2_graph(), GmConfig::exact());
        let p = session.prepare(fig2_query()).unwrap();
        for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            assert_eq!(p.run().order(order).count().result.count, 2, "{order:?}");
        }
    }
}
