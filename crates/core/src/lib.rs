//! GM — the end-to-end RIG-based hybrid graph pattern matcher (the paper's
//! primary contribution, integrating §3–§6).
//!
//! The pipeline of [`Matcher::run_with`]:
//!
//! 1. **transitive reduction** of the query (§3) — drop redundant
//!    reachability edges;
//! 2. **node selection** — pre-filter + double simulation (§4.2–§4.4);
//! 3. **node expansion** — build the refined RIG (§4.5); an empty RIG
//!    short-circuits to an empty answer;
//! 4. **search ordering** — JO / RI / BJ over RIG statistics (§5.2);
//! 5. **enumeration** — MJoin multiway intersections (§5.1).
//!
//! Every §7.4 ablation is a [`GmConfig`] knob, so the experiment harnesses
//! run the same code paths the library's users do.
//!
//! The primary application API is the [`Session`] (see [`session`]): it
//! owns the graph + reachability index, accepts queries as HPQL text or
//! [`PatternQuery`] values, and caches built RIGs across executions. The
//! borrowed [`Matcher`] facade below predates it; its execution entry
//! points are kept as deprecated shims over the same pipeline.

mod error;
mod report;
pub mod session;

pub use error::{Error, ErrorKind};
pub use report::{RunReport, RunStatus};
pub use session::{validate_pattern, CacheStats, Explain, IntoPattern, Prepared, Run, Session};

use std::time::{Duration, Instant};

use rig_graph::{DataGraph, NodeId};
use rig_index::{build_rig, Rig, RigOptions, RigStats};
use rig_mjoin::{enumerate, EnumOptions, EnumResult};
use rig_query::{transitive_reduction, PatternQuery};
use rig_reach::{BflIndex, Reachability};
use rig_sim::SimContext;

/// Full GM configuration. `Default` is the paper's evaluation setup.
#[derive(Debug, Clone, Copy, Default)]
pub struct GmConfig {
    /// Apply §3 transitive reduction before evaluation (`false` = GM-NR).
    pub skip_reduction: bool,
    /// RIG construction options (selection mode, simulation tuning,
    /// expansion mode).
    pub rig: RigOptions,
    /// Enumeration options (search order, limit, timeout, injectivity).
    pub enumeration: EnumOptions,
}

impl GmConfig {
    /// Exact-simulation configuration (no pass cap); used by tests.
    pub fn exact() -> Self {
        GmConfig { rig: RigOptions::exact(), ..Default::default() }
    }
}

/// Phase timings and sizes for one query evaluation.
#[derive(Debug, Clone)]
pub struct GmMetrics {
    /// Query transitive-reduction time.
    pub reduction_time: Duration,
    /// Node selection + expansion (the paper's "matching time" includes
    /// this plus ordering).
    pub rig_stats: RigStats,
    /// Result enumeration time (includes search-order computation, which
    /// is part of MJoin).
    pub enumeration_time: Duration,
    /// End-to-end evaluation time (excludes reachability-index build,
    /// which is per-graph, reported by [`Matcher::index_build_time`]).
    pub total_time: Duration,
    /// Reachability edges removed by the reduction.
    pub edges_reduced: usize,
    /// True when the RIG was served from a [`Session`] plan cache: the
    /// selection + expansion phases were skipped and `rig_stats` carries
    /// the timings recorded when the plan was originally built.
    pub rig_from_cache: bool,
}

impl GmMetrics {
    /// "Matching time" in the paper's Metrics paragraph: everything before
    /// enumeration starts.
    pub fn matching_time(&self) -> Duration {
        self.total_time.saturating_sub(self.enumeration_time)
    }
}

/// Result of one query evaluation.
#[derive(Debug)]
pub struct QueryOutcome {
    pub result: EnumResult,
    pub metrics: GmMetrics,
}

impl QueryOutcome {
    /// Errs with [`Error::Budget`] when the match limit or timeout
    /// truncated the answer; otherwise passes the outcome through. The
    /// strict form behind `Run::try_count` and the CLI's `--strict` flag.
    pub fn require_complete(self) -> Result<QueryOutcome, Error> {
        if self.result.timed_out || self.result.limit_hit {
            Err(Error::Budget {
                timed_out: self.result.timed_out,
                limit_hit: self.result.limit_hit,
            })
        } else {
            Ok(self)
        }
    }

    /// Converts to the engine-neutral report used by the harnesses.
    pub fn report(&self, engine: &str) -> RunReport {
        RunReport {
            engine: engine.to_string(),
            status: if self.result.timed_out { RunStatus::Timeout } else { RunStatus::Completed },
            occurrences: self.result.count,
            total_time: self.metrics.total_time,
            matching_time: self.metrics.matching_time(),
            enumeration_time: self.metrics.enumeration_time,
            intermediate_tuples: 0, // MJoin materializes none (§5.1)
            aux_size: self.metrics.rig_stats.size(),
        }
    }
}

/// A GM matcher bound to one data graph. Construction builds the BFL
/// reachability index once; every query evaluation reuses it (the paper's
/// per-graph setup, Fig. 18a).
///
/// The execution entry points (`count`, `collect`, `run_sink`, …) are
/// **deprecated shims**: prefer [`Session`], which owns the graph, adds
/// HPQL text queries and caches built RIGs across executions. `Matcher`
/// remains for harnesses that borrow a graph they also hand to other
/// engines.
///
/// ```
/// use rig_core::{GmConfig, Matcher};
/// use rig_graph::GraphBuilder;
/// use rig_query::{EdgeKind, PatternQuery};
///
/// let mut b = GraphBuilder::new();
/// let (x, y, z) = (b.add_node(0), b.add_node(1), b.add_node(2));
/// b.add_edge(x, y);
/// b.add_edge(y, z);
/// let g = b.build();
///
/// let mut q = PatternQuery::new(vec![0, 2]);
/// q.add_edge(0, 1, EdgeKind::Reachability); // label-0 node reaching a label-2 node
///
/// let matcher = Matcher::new(&g);
/// # #[allow(deprecated)]
/// # fn run(matcher: &Matcher<'_>, q: &PatternQuery) -> u64 {
/// #     matcher.count(q, &GmConfig::default()).result.count
/// # }
/// assert_eq!(run(&matcher, &q), 1);
/// ```
pub struct Matcher<'g> {
    graph: &'g DataGraph,
    bfl: BflIndex,
}

impl<'g> Matcher<'g> {
    /// Builds the matcher (and its BFL index) for `graph`.
    pub fn new(graph: &'g DataGraph) -> Self {
        Matcher { graph, bfl: BflIndex::new(graph) }
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &'g DataGraph {
        self.graph
    }

    /// Reachability-index construction time (Fig. 18a's "BFL" column).
    pub fn index_build_time(&self) -> Duration {
        Duration::from_secs_f64(self.bfl.build_seconds())
    }

    /// Direct access to the reachability oracle.
    pub fn reachability(&self) -> &impl Reachability {
        &self.bfl
    }

    /// The concrete BFL index (condensation + interval labels), as RIG
    /// construction consumes it — used by harnesses that build RIGs
    /// outside the facade (e.g. the CSR-vs-reference benchmarks).
    pub fn bfl(&self) -> &BflIndex {
        &self.bfl
    }

    /// Shared GM pipeline (§3 reduction, Alg. 4 RIG build, Alg. 5
    /// enumeration) with the enumeration stage supplied by the caller: the
    /// sequential, sink-streaming and morsel-parallel entry points all run
    /// through here so they stay behaviorally identical up to the engine.
    fn run_pipeline(
        &self,
        query: &PatternQuery,
        cfg: &GmConfig,
        enumerate_stage: impl FnOnce(&PatternQuery, &Rig) -> EnumResult,
    ) -> QueryOutcome {
        let total_start = Instant::now();

        // 1. transitive reduction (§3)
        let red_start = Instant::now();
        let reduced_storage;
        let edges_reduced;
        let query_ref: &PatternQuery = if cfg.skip_reduction {
            edges_reduced = 0;
            query
        } else {
            reduced_storage = transitive_reduction(query);
            edges_reduced = query.num_edges() - reduced_storage.num_edges();
            &reduced_storage
        };
        let reduction_time = red_start.elapsed();

        // 2–3. RIG construction (Alg. 4)
        let ctx = SimContext::new(self.graph, query_ref, &self.bfl);
        let rig = build_rig(&ctx, &self.bfl, &cfg.rig);

        // 4–5. ordering + enumeration (Alg. 5)
        let order_start = Instant::now();
        let result = if rig.is_empty() {
            EnumResult::empty(Vec::new())
        } else {
            enumerate_stage(query_ref, &rig)
        };
        let enum_total = order_start.elapsed();

        let metrics = GmMetrics {
            reduction_time,
            rig_stats: rig.stats.clone(),
            enumeration_time: enum_total,
            total_time: total_start.elapsed(),
            edges_reduced,
            rig_from_cache: false,
        };
        QueryOutcome { result, metrics }
    }

    /// Evaluates `query`, streaming every occurrence tuple (indexed by
    /// query node) to `visit`; return `false` to stop early.
    #[deprecated(note = "use Session::prepare + Run::stream (see rig_core::session)")]
    pub fn run_with(
        &self,
        query: &PatternQuery,
        cfg: &GmConfig,
        visit: impl FnMut(&[NodeId]) -> bool,
    ) -> QueryOutcome {
        self.run_pipeline(query, cfg, |q, rig| enumerate(q, rig, &cfg.enumeration, visit))
    }

    /// Evaluates `query`, streaming occurrences into `sink` (see
    /// `rig_mjoin::sink` for count-only / first-k / batched consumers).
    #[deprecated(note = "use Session::prepare + Run::stream (see rig_core::session)")]
    pub fn run_sink<S: ResultSink>(
        &self,
        query: &PatternQuery,
        cfg: &GmConfig,
        sink: &mut S,
    ) -> QueryOutcome {
        let mut engine_ran = false;
        let outcome = self.run_pipeline(query, cfg, |q, rig| {
            engine_ran = true;
            rig_mjoin::enumerate_sink(q, rig, &cfg.enumeration, sink)
        });
        // An empty RIG short-circuits before the engine runs; the sink
        // contract (finish fires exactly once per run) must still hold.
        if !engine_ran {
            sink.finish();
        }
        outcome
    }

    /// Counts the occurrences of `query`.
    #[deprecated(note = "use Session::prepare + Run::count (see rig_core::session)")]
    #[allow(deprecated)]
    pub fn count(&self, query: &PatternQuery, cfg: &GmConfig) -> QueryOutcome {
        self.run_with(query, cfg, |_| true)
    }

    /// Counts occurrences with `threads` morsel-driven parallel workers
    /// (§6 future work). `limit` and `timeout` are enforced across
    /// workers — no sequential fallback.
    #[deprecated(note = "use Session::prepare + Run::threads(n).count (see rig_core::session)")]
    pub fn par_count(&self, query: &PatternQuery, cfg: &GmConfig, threads: usize) -> QueryOutcome {
        self.run_pipeline(query, cfg, |q, rig| {
            rig_mjoin::par_count(q, rig, &cfg.enumeration, threads)
        })
    }

    /// Parallel evaluation streaming into per-worker sinks
    /// (`make_sink(worker_index)`); returns the sinks alongside the
    /// outcome. See [`rig_mjoin::par_enumerate`] for the sink contract.
    #[deprecated(note = "use Session::prepare + Run::par_stream (see rig_core::session)")]
    pub fn par_run<S, F>(
        &self,
        query: &PatternQuery,
        cfg: &GmConfig,
        par: &ParOptions,
        make_sink: F,
    ) -> (Vec<S>, QueryOutcome)
    where
        S: ResultSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        let mut sinks = Vec::new();
        let outcome = self.run_pipeline(query, cfg, |q, rig| {
            let (s, r) = rig_mjoin::par_enumerate(q, rig, &cfg.enumeration, par, &make_sink);
            sinks = s;
            r
        });
        // An empty RIG short-circuits before the engine runs; still hand
        // back one (finished) sink per worker so callers can merge
        // uniformly.
        if sinks.is_empty() {
            sinks = (0..par.threads.max(1))
                .map(|w| {
                    let mut s = make_sink(w);
                    s.finish();
                    s
                })
                .collect();
        }
        (sinks, outcome)
    }

    /// Collects up to `max` occurrence tuples.
    #[deprecated(note = "use Session::prepare + Run::collect (see rig_core::session)")]
    #[allow(deprecated)]
    pub fn collect(
        &self,
        query: &PatternQuery,
        cfg: &GmConfig,
        max: usize,
    ) -> (Vec<Vec<NodeId>>, QueryOutcome) {
        let mut out = Vec::new();
        let outcome = self.run_with(query, cfg, |t| {
            if out.len() < max {
                out.push(t.to_vec());
            }
            out.len() < max
        });
        (out, outcome)
    }

    /// Builds (and returns) just the RIG for `query` — used by the Fig. 13
    /// harness to measure index size and build time without enumeration.
    #[deprecated(note = "use Session::prepare + Run::explain, or rig_index::build_rig directly")]
    pub fn build_rig_only(&self, query: &PatternQuery, cfg: &GmConfig) -> Rig {
        let ctx = SimContext::new(self.graph, query, &self.bfl);
        build_rig(&ctx, &self.bfl, &cfg.rig)
    }
}

// re-export the pieces users need to drive the matcher without digging
// through sub-crates
pub use rig_index::{ReachExpandMode, RigOptions as RigBuildOptions, SelectMode};
pub use rig_mjoin::{
    BatchSink, CollectSink, CountSink, EnumOptions as EnumerationOptions, FirstKSink, FnSink,
    ParOptions, ResultSink, SearchOrder,
};
pub use rig_sim::{DirectCheckMode, ReachCheckMode, SimAlgorithm, SimOptions};

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use rig_mjoin::EnumOptions;
    use rig_query::{fig2_query, EdgeKind, PatternQuery};

    fn fig2_graph() -> DataGraph {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    #[test]
    fn end_to_end_fig2() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        let (tuples, outcome) = m.collect(&fig2_query(), &GmConfig::exact(), 10);
        let mut sorted = tuples;
        sorted.sort();
        assert_eq!(sorted, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        assert_eq!(outcome.result.count, 2);
        let report = outcome.report("GM");
        assert_eq!(report.status, RunStatus::Completed);
        assert_eq!(report.occurrences, 2);
        assert_eq!(report.intermediate_tuples, 0);
    }

    #[test]
    fn reduction_removes_redundant_reachability_edge() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        // add redundant A => C on top of A -> B => C
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        q.add_edge(0, 2, EdgeKind::Reachability); // redundant
        let with = m.count(&q, &GmConfig::exact());
        assert_eq!(with.metrics.edges_reduced, 1);
        let without = m.count(&q, &GmConfig { skip_reduction: true, ..GmConfig::exact() });
        assert_eq!(without.metrics.edges_reduced, 0);
        // identical answers either way (equivalence of the reduction)
        assert_eq!(with.result.count, without.result.count);
    }

    #[test]
    fn limit_and_timeout_paths() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        let cfg = GmConfig {
            enumeration: EnumOptions { limit: Some(1), ..Default::default() },
            ..GmConfig::exact()
        };
        let o = m.count(&fig2_query(), &cfg);
        assert_eq!(o.result.count, 1);
        assert!(o.result.limit_hit);
    }

    #[test]
    fn empty_answer_short_circuits() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        // label 2 -> label 0 direct edge never occurs
        let mut q = PatternQuery::new(vec![2, 0]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let o = m.count(&q, &GmConfig::exact());
        assert_eq!(o.result.count, 0);
        assert_eq!(o.metrics.rig_stats.node_count, 0);
    }

    #[test]
    fn three_pass_default_equals_exact_count() {
        // the §4.5 approximation changes the RIG, never the answer
        let g = fig2_graph();
        let m = Matcher::new(&g);
        let exact = m.count(&fig2_query(), &GmConfig::exact());
        let capped = m.count(&fig2_query(), &GmConfig::default());
        assert_eq!(exact.result.count, capped.result.count);
    }

    #[test]
    fn parallel_facade_agrees_with_sequential() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        let seq = m.count(&fig2_query(), &GmConfig::exact());
        for threads in [2usize, 8] {
            let par = m.par_count(&fig2_query(), &GmConfig::exact(), threads);
            assert_eq!(par.result.count, seq.result.count, "threads={threads}");
        }
        let (sinks, outcome) = m.par_run(
            &fig2_query(),
            &GmConfig::exact(),
            &ParOptions { threads: 3, morsel: 1 },
            |_| CollectSink::default(),
        );
        let mut tuples: Vec<Vec<NodeId>> = sinks.into_iter().flat_map(|s| s.tuples).collect();
        tuples.sort();
        assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]]);
        assert_eq!(outcome.result.count, 2);
    }

    #[test]
    fn parallel_limit_is_enforced_not_fallen_back() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        let cfg = GmConfig {
            enumeration: EnumOptions { limit: Some(1), ..Default::default() },
            ..GmConfig::exact()
        };
        let o = m.par_count(&fig2_query(), &cfg, 4);
        assert_eq!(o.result.count, 1);
        assert!(o.result.limit_hit);
    }

    #[test]
    fn sink_facade_streams() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        let mut sink = CountSink::default();
        let o = m.run_sink(&fig2_query(), &GmConfig::exact(), &mut sink);
        assert_eq!(sink.count, 2);
        assert_eq!(o.result.count, 2);
    }

    /// `finish` must fire exactly once per run even when the empty-RIG
    /// short circuit skips the engine entirely.
    #[test]
    fn sink_finish_fires_on_empty_rig_short_circuit() {
        struct FinishCounter {
            finished: u32,
        }
        impl ResultSink for FinishCounter {
            fn push(&mut self, _t: &[NodeId]) -> bool {
                true
            }
            fn finish(&mut self) {
                self.finished += 1;
            }
        }
        let g = fig2_graph();
        let m = Matcher::new(&g);
        // label 2 -> label 0 direct edge never occurs: empty RIG
        let mut q = PatternQuery::new(vec![2, 0]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let mut sink = FinishCounter { finished: 0 };
        let o = m.run_sink(&q, &GmConfig::exact(), &mut sink);
        assert_eq!(o.result.count, 0);
        assert_eq!(sink.finished, 1, "finish must fire exactly once");
        // non-empty path fires it exactly once too (inside the engine)
        let mut sink2 = FinishCounter { finished: 0 };
        m.run_sink(&fig2_query(), &GmConfig::exact(), &mut sink2);
        assert_eq!(sink2.finished, 1);
    }

    #[test]
    fn all_search_orders_agree_end_to_end() {
        let g = fig2_graph();
        let m = Matcher::new(&g);
        for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            let cfg = GmConfig {
                enumeration: EnumOptions { order, ..Default::default() },
                ..GmConfig::exact()
            };
            assert_eq!(m.count(&fig2_query(), &cfg).result.count, 2, "{order:?}");
        }
    }
}
