//! Session-level surface of the factorized answer subsystem.
//!
//! The engine lives in [`rig_mjoin::factorized`]: a [`Factorization`]
//! compiles one query against its pruned RIG into a DP-countable /
//! lazily-expandable answer representation (see `docs/factorized.md`).
//! This module adds the *policy* layer the [`Session`](crate::Session)
//! API uses:
//!
//! * [`dp_eligible`] — the eligibility rule deciding when
//!   [`Run::count`](crate::session::Run::count) auto-routes to the DP;
//! * [`strategy`] — the human-readable DP-vs-enumerate choice reported by
//!   [`Explain`](crate::Explain) and the CLI;
//! * [`dp_count_result`] — the DP wrapped in the engine's [`EnumResult`]
//!   shape (with overflow falling back to `None` so the caller can
//!   enumerate instead);
//! * [`FactorizedSummary`] — the answer-graph summary printed by the
//!   CLI's `--factorized` output mode.

pub use rig_mjoin::factorized::{DpCount, Factorization, FactorizationShape, FactorizedTuples};

use rig_index::Rig;
use rig_mjoin::{EnumOptions, EnumResult};
use rig_query::PatternQuery;

/// Eligibility rule for auto-routing `count()` to the factorized DP.
///
/// * `injective` — the DP counts homomorphisms; injectivity constraints
///   cut across the factorization's independence structure, so injective
///   runs always enumerate.
/// * `limit` / `timeout` — budgeted runs keep the enumeration engine's
///   exact truncation semantics (`limit_hit` / `timed_out` witness where
///   the budget struck), which a total-count DP cannot reproduce.
pub fn dp_eligible(opts: &EnumOptions) -> bool {
    !opts.injective && opts.limit.is_none() && opts.timeout.is_none()
}

/// The DP-vs-enumerate routing decision, as reported by `explain` and the
/// CLI. `eligible` mirrors [`dp_eligible`] for the run's options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountStrategy {
    /// Would `count()` use the DP under these options?
    pub eligible: bool,
    /// Human-readable decision, e.g. `"factorized DP (tree)"` or
    /// `"enumerate (injective)"`.
    pub describe: String,
}

/// Computes the routing decision for `query` under `opts`.
/// `force_enumerate` is the [`Run`](crate::session::Run) escape hatch.
pub fn strategy(query: &PatternQuery, opts: &EnumOptions, force_enumerate: bool) -> CountStrategy {
    let shape = FactorizationShape::analyze(query);
    let shape_desc = if shape.is_tree() {
        "tree".to_string()
    } else {
        format!(
            "cyclic, {} edge(s) re-expanded over {} var(s)",
            shape.extra_edges.len(),
            shape.conditioned.len()
        )
    };
    if force_enumerate {
        return CountStrategy {
            eligible: false,
            describe: format!("enumerate (forced; shape is {shape_desc})"),
        };
    }
    if opts.injective {
        return CountStrategy { eligible: false, describe: "enumerate (injective)".into() };
    }
    if opts.limit.is_some() || opts.timeout.is_some() {
        return CountStrategy {
            eligible: false,
            describe: "enumerate (limit/timeout budget set)".into(),
        };
    }
    let guard = if shape.is_tree() { "" } else { "; enumerates if conditioning fan-out is large" };
    CountStrategy { eligible: true, describe: format!("factorized DP ({shape_desc}{guard})") }
}

/// Conditioning cost guard: when a cyclic query's estimated re-expansion
/// work ([`Factorization::estimated_work`] — conditioning bindings times
/// per-binding width) exceeds this, per-binding re-expansion loses to the
/// enumeration engine's interleaved search and `count()` routes there
/// instead.
pub const DP_CONDITIONING_LIMIT: u64 = 1 << 18;

/// Runs the counting DP and wraps it as an [`EnumResult`] (steps = number
/// of conditioning bindings re-expanded). Returns `None` when the cyclic
/// cost guard trips ([`DP_CONDITIONING_LIMIT`]) or the exact count
/// overflows `u64` — either way the caller falls back to enumeration,
/// which preserves semantics.
pub fn dp_count_result(query: &PatternQuery, rig: &Rig) -> Option<EnumResult> {
    let mut f = Factorization::new(query, rig);
    if !f.is_tree() && f.estimated_work() > DP_CONDITIONING_LIMIT {
        return None;
    }
    let dp = f.count();
    let count = u64::try_from(dp.total?).ok()?;
    Some(EnumResult {
        count,
        timed_out: false,
        limit_hit: false,
        order: f.order().to_vec(),
        steps: dp.assignments,
    })
}

/// Per-variable slice of the answer-graph summary.
#[derive(Debug, Clone)]
pub struct VarSummary {
    /// Variable name (HPQL name when known, `v<i>` otherwise).
    pub name: String,
    /// RIG candidate-set cardinality `|cos(q)|`.
    pub candidates: u64,
    /// Distinct bindings of this variable across the full answer set.
    pub distinct: u64,
}

/// The answer-graph summary printed by the CLI's `--factorized` mode:
/// shape, conditioning, exact count and per-variable cardinalities —
/// all computed without materializing a single tuple.
#[derive(Debug, Clone)]
pub struct FactorizedSummary {
    /// The (reduced) query, pretty-printed as HPQL.
    pub hpql: String,
    /// True for tree-shaped queries (single DP pass).
    pub tree: bool,
    /// Cyclic edges requiring conditional re-expansion.
    pub extra_edges: usize,
    /// Names of the conditioned variables.
    pub conditioned: Vec<String>,
    /// Conditioning bindings the DP expanded over.
    pub assignments: u64,
    /// Exact occurrence count. `None` when the count overflowed u128
    /// (effectively astronomically large) or the deadline truncated the
    /// DP (`timed_out` distinguishes the two).
    pub count: Option<u128>,
    /// Per-variable candidate/distinct cardinalities.
    pub vars: Vec<VarSummary>,
    /// True when the RIG came from the session plan cache.
    pub rig_from_cache: bool,
    /// True when the run's timeout expired during the RIG build or the
    /// DP's conditioning loop: `count` is `None` and the cardinalities
    /// are unreliable.
    pub timed_out: bool,
}

impl std::fmt::Display for FactorizedSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query:       {}", self.hpql)?;
        if self.tree {
            writeln!(f, "shape:       tree (pure DP, no re-expansion)")?;
        } else {
            writeln!(
                f,
                "shape:       cyclic ({} extra edge(s); conditioned on [{}], {} binding(s))",
                self.extra_edges,
                self.conditioned.join(", "),
                self.assignments,
            )?;
        }
        match self.count {
            Some(c) => writeln!(f, "count:       {c}")?,
            None if self.timed_out => writeln!(f, "count:       (timed out)")?,
            None => writeln!(f, "count:       > u128 (overflow)")?,
        }
        writeln!(f, "rig:         {}", if self.rig_from_cache { "cached" } else { "built" })?;
        writeln!(f, "variables:   name  candidates  distinct")?;
        for v in &self.vars {
            writeln!(f, "             {:<5} {:>10}  {:>8}", v.name, v.candidates, v.distinct)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_query::EdgeKind;
    use std::time::Duration;

    fn chain() -> PatternQuery {
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q
    }

    #[test]
    fn eligibility_rules() {
        let q = chain();
        let base = EnumOptions::default();
        assert!(strategy(&q, &base, false).eligible);
        assert!(!strategy(&q, &base, true).eligible);
        assert!(!strategy(&q, &base.with_limit(5), false).eligible);
        assert!(!strategy(&q, &base.with_timeout(Duration::from_secs(1)), false).eligible);
        let inj = EnumOptions { injective: true, ..base };
        assert!(!strategy(&q, &inj, false).eligible);
        assert_eq!(dp_eligible(&base), strategy(&q, &base, false).eligible);
    }

    #[test]
    fn strategy_describes_shape() {
        assert!(strategy(&chain(), &EnumOptions::default(), false).describe.contains("tree"));
        let mut t = PatternQuery::new(vec![0, 1, 2]);
        t.add_edge(0, 1, EdgeKind::Direct);
        t.add_edge(1, 2, EdgeKind::Direct);
        t.add_edge(0, 2, EdgeKind::Direct);
        assert!(strategy(&t, &EnumOptions::default(), false).describe.contains("cyclic"));
    }
}
