//! The three FB fixpoint algorithms (Algs. 1–3 of the paper).

use crate::checks::{backward_prune_edge, forward_prune_edge};
use crate::{SimAlgorithm, SimContext, SimOptions, SimResult, TraceEvent};
use rig_bitset::Bitset;
use rig_query::{EdgeId, QNode};

/// Computes the double simulation `FB` of `ctx.query` by `ctx.graph`.
pub fn double_simulation(ctx: &SimContext<'_>, opts: &SimOptions) -> SimResult {
    run_from(Runner::new(ctx, opts))
}

/// Like [`double_simulation`], but the fixpoint starts from `seed` instead
/// of the raw match sets. `seed[q]` must sandwich `FB(q) ⊆ seed[q] ⊆ ms(q)`
/// — e.g. the pre-filter output — so the largest simulation contained in
/// the seed is still `FB` and no answer can be lost. Starting from the
/// pre-pruned relation lets the prefilter's work carry into the fixpoint
/// instead of being thrown away and re-derived; pass counts in the result
/// reflect the passes actually run on the seeded relation.
pub fn double_simulation_seeded(
    ctx: &SimContext<'_>,
    opts: &SimOptions,
    seed: Vec<Bitset>,
) -> SimResult {
    assert_eq!(seed.len(), ctx.query.num_nodes(), "one seed set per query node");
    run_from(Runner::with_start(ctx, opts, seed))
}

fn run_from(mut runner: Runner<'_, '_>) -> SimResult {
    let ctx = runner.ctx;
    match runner.opts.algorithm {
        SimAlgorithm::Basic => runner.run_basic(),
        SimAlgorithm::Dag | SimAlgorithm::DagDelta => {
            if ctx.query.is_dag() {
                let all: Vec<EdgeId> = (0..ctx.query.num_edges() as EdgeId).collect();
                runner.run_dag(&all)
            } else {
                // Dag on a cyclic pattern falls back to Dag+Δ (Alg. 3).
                runner.run_dag_delta()
            }
        }
    }
    runner.finish()
}

struct Runner<'c, 'a> {
    ctx: &'c SimContext<'a>,
    opts: SimOptions,
    fb: Vec<Bitset>,
    /// Monotonic per-query-node change counters (for change-flag skipping).
    ver: Vec<u64>,
    passes: usize,
    step: usize,
    pruned: u64,
    trace: Vec<TraceEvent>,
}

impl<'c, 'a> Runner<'c, 'a> {
    fn new(ctx: &'c SimContext<'a>, opts: &SimOptions) -> Self {
        let fb = ctx.match_sets();
        Self::with_start(ctx, opts, fb)
    }

    fn with_start(ctx: &'c SimContext<'a>, opts: &SimOptions, fb: Vec<Bitset>) -> Self {
        let n = ctx.query.num_nodes();
        Runner {
            ctx,
            opts: *opts,
            fb,
            ver: vec![0; n],
            passes: 0,
            step: 0,
            pruned: 0,
            trace: Vec::new(),
        }
    }

    fn finish(self) -> SimResult {
        SimResult { fb: self.fb, passes: self.passes, pruned: self.pruned, trace: self.trace }
    }

    fn record(&mut self, qnode: QNode, removed: Vec<rig_graph::NodeId>) -> bool {
        if removed.is_empty() {
            return false;
        }
        self.ver[qnode as usize] += 1;
        self.pruned += removed.len() as u64;
        if self.opts.trace {
            self.trace.push(TraceEvent {
                pass: self.passes,
                step: self.step,
                qnode,
                pruned: removed,
            });
        }
        true
    }

    fn fwd(&mut self, eid: EdgeId) -> bool {
        let q = self.ctx.query.edge(eid).from;
        let removed = forward_prune_edge(self.ctx, &mut self.fb, eid, &self.opts);
        self.record(q, removed)
    }

    fn bwd(&mut self, eid: EdgeId) -> bool {
        let q = self.ctx.query.edge(eid).to;
        let removed = backward_prune_edge(self.ctx, &mut self.fb, eid, &self.opts);
        self.record(q, removed)
    }

    fn cap_reached(&self) -> bool {
        self.opts.max_passes.is_some_and(|cap| self.passes >= cap)
            || self.opts.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Sum of change counters of the nodes adjacent to `q` through the
    /// given edges — the "inputs" of `q`'s forward or backward condition.
    fn input_version(&self, edges: &[EdgeId], take_from: bool) -> u64 {
        edges
            .iter()
            .map(|&e| {
                let pe = self.ctx.query.edge(e);
                let other = if take_from { pe.from } else { pe.to };
                self.ver[other as usize]
            })
            .sum()
    }

    // --------------------------------------------------------------
    // Alg. 1: FBSimBas — arbitrary edge order until fixpoint.
    // --------------------------------------------------------------
    fn run_basic(&mut self) {
        loop {
            let mut changed = false;
            self.step += 1; // forwardPrune
            for eid in 0..self.ctx.query.num_edges() as EdgeId {
                changed |= self.fwd(eid);
            }
            self.step += 1; // backwardPrune
            for eid in 0..self.ctx.query.num_edges() as EdgeId {
                changed |= self.bwd(eid);
            }
            self.passes += 1;
            if !changed || self.cap_reached() {
                return;
            }
        }
    }

    // --------------------------------------------------------------
    // Alg. 2: FBSimDag — reverse-topological forward sweep, then
    // topological backward sweep, restricted to `edges` (the spanning dag
    // in the Dag+Δ case). `change_flags` enables the DagMap skipping.
    // --------------------------------------------------------------
    fn run_dag(&mut self, edges: &[EdgeId]) {
        let in_set: std::collections::HashSet<EdgeId> = edges.iter().copied().collect();
        let sub = self.ctx.query.with_edges(edges);
        let topo = sub.topological_order().expect("run_dag requires an acyclic edge subset");
        let nq = self.ctx.query.num_nodes();
        // last-seen input versions for the change-flag optimization
        let mut seen_fwd = vec![u64::MAX; nq];
        let mut seen_bwd = vec![u64::MAX; nq];
        // restrict out/in edge lists to the dag subset, keeping original ids
        let out_edges: Vec<Vec<EdgeId>> = (0..nq)
            .map(|q| {
                self.ctx
                    .query
                    .out_edges(q as QNode)
                    .iter()
                    .copied()
                    .filter(|e| in_set.contains(e))
                    .collect()
            })
            .collect();
        let in_edges: Vec<Vec<EdgeId>> = (0..nq)
            .map(|q| {
                self.ctx
                    .query
                    .in_edges(q as QNode)
                    .iter()
                    .copied()
                    .filter(|e| in_set.contains(e))
                    .collect()
            })
            .collect();

        loop {
            let mut changed = false;
            // forwardSim: reverse topological order
            self.step += 1;
            for &q in topo.iter().rev() {
                let oe = &out_edges[q as usize];
                if oe.is_empty() {
                    continue; // sink: trivially forward-simulates
                }
                if self.opts.change_flags {
                    let v = self.input_version(oe, false).wrapping_add(self.ver[q as usize]);
                    if seen_fwd[q as usize] == v {
                        continue;
                    }
                }
                for &eid in oe {
                    changed |= self.fwd(eid);
                }
                if self.opts.change_flags {
                    seen_fwd[q as usize] =
                        self.input_version(oe, false).wrapping_add(self.ver[q as usize]);
                }
            }
            // backwardSim: topological order
            self.step += 1;
            for &q in topo.iter() {
                let ie = &in_edges[q as usize];
                if ie.is_empty() {
                    continue; // source: trivially backward-simulates
                }
                if self.opts.change_flags {
                    let v = self.input_version(ie, true).wrapping_add(self.ver[q as usize]);
                    if seen_bwd[q as usize] == v {
                        continue;
                    }
                }
                for &eid in ie {
                    changed |= self.bwd(eid);
                }
                if self.opts.change_flags {
                    seen_bwd[q as usize] =
                        self.input_version(ie, true).wrapping_add(self.ver[q as usize]);
                }
            }
            self.passes += 1;
            if !changed || self.cap_reached() {
                return;
            }
        }
    }

    // --------------------------------------------------------------
    // Alg. 3: FBSim (Dag+Δ) — alternate dag sweeps with back-edge sweeps.
    // --------------------------------------------------------------
    fn run_dag_delta(&mut self) {
        let (dag_edges, back_edges) = self.ctx.query.dag_decomposition();
        loop {
            let before = self.pruned;
            // one FBSimDag round on the spanning dag (its own fixpoint,
            // bounded by the remaining pass budget)
            self.run_dag(&dag_edges);
            if self.cap_reached() {
                return;
            }
            // one FBSimBas sweep on the back edges
            self.step += 1;
            for &eid in &back_edges {
                self.fwd(eid);
            }
            self.step += 1;
            for &eid in &back_edges {
                self.bwd(eid);
            }
            self.passes += 1;
            if self.pruned == before || self.cap_reached() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectCheckMode, ReachCheckMode};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rig_graph::{DataGraph, GraphBuilder, NodeId};
    use rig_query::{EdgeKind, PatternQuery};
    use rig_reach::BflIndex;

    /// Naive reference: pairwise fixpoint straight from Def. 1.
    fn naive_fb(g: &DataGraph, q: &PatternQuery) -> Vec<Vec<NodeId>> {
        let reach = BflIndex::new(g);
        use rig_reach::Reachability;
        let mut s: Vec<Vec<NodeId>> = q
            .labels()
            .iter()
            .map(|&l| (0..g.num_nodes() as NodeId).filter(|&v| g.label(v) == l).collect())
            .collect();
        let matches = |e: rig_query::PatternEdge, u: NodeId, v: NodeId| match e.kind {
            EdgeKind::Direct => g.has_edge(u, v),
            EdgeKind::Reachability => reach.reaches(u, v),
        };
        loop {
            let mut changed = false;
            for &e in q.edges() {
                let (qi, qj) = (e.from as usize, e.to as usize);
                let heads = s[qj].clone();
                let before = s[qi].len();
                s[qi].retain(|&u| heads.iter().any(|&v| matches(e, u, v)));
                changed |= s[qi].len() != before;
                let tails = s[qi].clone();
                let before = s[qj].len();
                s[qj].retain(|&v| tails.iter().any(|&u| matches(e, u, v)));
                changed |= s[qj].len() != before;
            }
            if !changed {
                return s;
            }
        }
    }

    fn random_labeled_graph(n: usize, m: usize, labels: u32, seed: u64) -> DataGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(rng.gen_range(0..labels));
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u != v {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    fn random_pattern(labels: u32, seed: u64) -> PatternQuery {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let n = rng.gen_range(2..6usize);
        let mut q = PatternQuery::new((0..n).map(|_| rng.gen_range(0..labels)).collect());
        // spanning chain for connectivity, then random extra edges
        for i in 1..n as u32 {
            let kind = if rng.gen_bool(0.5) { EdgeKind::Direct } else { EdgeKind::Reachability };
            q.add_edge(i - 1, i, kind);
        }
        for _ in 0..rng.gen_range(0..4usize) {
            let a = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(0..n) as u32;
            if a != b {
                let kind =
                    if rng.gen_bool(0.5) { EdgeKind::Direct } else { EdgeKind::Reachability };
                q.ensure_edge(a, b, kind);
            }
        }
        q
    }

    /// All algorithm/check-mode combinations must equal the naive pairwise
    /// fixpoint on random (graph, pattern) instances — including cyclic
    /// patterns, where Dag falls back to Dag+Δ.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn randomized_equivalence_with_naive_fixpoint() {
        for seed in 0..20u64 {
            let g = random_labeled_graph(30, 70, 3, seed);
            let q = random_pattern(3, seed);
            let expect = naive_fb(&g, &q);
            let reach = BflIndex::new(&g);
            let ctx = SimContext::new(&g, &q, &reach);
            for algorithm in [SimAlgorithm::Basic, SimAlgorithm::Dag, SimAlgorithm::DagDelta] {
                for direct_mode in [DirectCheckMode::BitBat, DirectCheckMode::BinSearch] {
                    for reach_mode in [ReachCheckMode::BfsSets, ReachCheckMode::PairwiseIndex] {
                        for change_flags in [false, true] {
                            let opts = SimOptions {
                                algorithm,
                                direct_mode,
                                reach_mode,
                                max_passes: None,
                                change_flags,
                                ..Default::default()
                            };
                            let r = double_simulation(&ctx, &opts);
                            for i in 0..q.num_nodes() {
                                assert_eq!(
                                    r.fb[i].to_vec(),
                                    expect[i],
                                    "seed={seed} node={i} {opts:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// The seeded fixpoint started from the prefilter output equals the
    /// unseeded fixpoint: the largest simulation contained in any sandwich
    /// `FB ⊆ seed ⊆ ms` is FB itself.
    #[test]
    fn seeded_from_prefilter_equals_unseeded_fixpoint() {
        use crate::{double_simulation_seeded, prefilter};
        for seed in 0..12u64 {
            let g = random_labeled_graph(25, 60, 3, seed);
            let q = random_pattern(3, seed);
            let reach = BflIndex::new(&g);
            let ctx = SimContext::new(&g, &q, &reach);
            let opts = SimOptions::exact();
            let plain = double_simulation(&ctx, &opts);
            let pf = prefilter(&ctx);
            let seeded = double_simulation_seeded(&ctx, &opts, pf);
            for i in 0..q.num_nodes() {
                assert_eq!(plain.fb[i].to_vec(), seeded.fb[i].to_vec(), "seed={seed} node={i}");
            }
            assert!(seeded.passes >= 1);
        }
    }

    /// With a pass cap the seeded run stays a sound overapproximation of FB.
    #[test]
    fn seeded_with_cap_is_sound() {
        use crate::{double_simulation_seeded, prefilter};
        for seed in 0..8u64 {
            let g = random_labeled_graph(25, 60, 3, seed);
            let q = random_pattern(3, seed);
            let reach = BflIndex::new(&g);
            let ctx = SimContext::new(&g, &q, &reach);
            let exact = double_simulation(&ctx, &SimOptions::exact());
            let pf = prefilter(&ctx);
            let capped = double_simulation_seeded(&ctx, &SimOptions::paper_default(), pf);
            for i in 0..q.num_nodes() {
                assert!(exact.fb[i].is_subset(&capped.fb[i]), "seed={seed} node={i}");
            }
        }
    }

    /// FB must contain every occurrence column (os(q) ⊆ FB(q)): brute-force
    /// homomorphisms on tiny instances and check containment.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn fb_contains_all_occurrences() {
        for seed in 0..10u64 {
            let g = random_labeled_graph(14, 30, 2, seed);
            let q = random_pattern(2, seed);
            let reach = BflIndex::new(&g);
            use rig_reach::Reachability;
            // brute force all assignments
            let n = q.num_nodes();
            let mut occs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
            let mut assign = vec![0 as NodeId; n];
            let gv = g.num_nodes() as NodeId;
            let mut stack = vec![0 as NodeId];
            'outer: loop {
                let depth = stack.len() - 1;
                let v = *stack.last().unwrap();
                if v >= gv {
                    stack.pop();
                    if let Some(top) = stack.last_mut() {
                        *top += 1;
                        continue;
                    }
                    break;
                }
                assign[depth] = v;
                let ok_label = g.label(v) == q.label(depth as u32);
                let ok_edges = ok_label
                    && q.edges().iter().all(|e| {
                        let (f, t) = (e.from as usize, e.to as usize);
                        if f > depth || t > depth {
                            return true;
                        }
                        match e.kind {
                            EdgeKind::Direct => g.has_edge(assign[f], assign[t]),
                            EdgeKind::Reachability => reach.reaches(assign[f], assign[t]),
                        }
                    });
                if ok_edges {
                    if depth + 1 == n {
                        for (i, &x) in assign.iter().enumerate() {
                            occs[i].push(x);
                        }
                        *stack.last_mut().unwrap() += 1;
                    } else {
                        stack.push(0);
                    }
                    continue 'outer;
                }
                *stack.last_mut().unwrap() += 1;
            }
            let ctx = SimContext::new(&g, &q, &reach);
            let r = double_simulation(&ctx, &SimOptions::exact());
            for i in 0..n {
                for &v in &occs[i] {
                    assert!(
                        r.fb[i].contains(v),
                        "seed={seed}: occurrence node {v} missing from FB({i})"
                    );
                }
            }
        }
    }
}
