//! Node pre-filtering ([11, 63] in the paper; §7.1).
//!
//! The baseline filter the paper applies to JM and TM (and to the GM-F
//! ablation of Fig. 13): a *single, non-iterated* pass of the forward and
//! backward prunes over the match sets. Unlike double simulation it does
//! not run to fixpoint, so it prunes strictly less — that gap is exactly
//! what Fig. 13 measures.

use crate::checks::{backward_prune_edge, forward_prune_edge};
use crate::{SimContext, SimOptions};
use rig_bitset::Bitset;
use rig_query::EdgeId;

/// One forward + one backward sweep over all query edges, starting from the
/// match sets. Returns the filtered candidate sets.
pub fn prefilter(ctx: &SimContext<'_>) -> Vec<Bitset> {
    let opts = SimOptions::default();
    let mut fb = ctx.match_sets();
    for eid in 0..ctx.query.num_edges() as EdgeId {
        forward_prune_edge(ctx, &mut fb, eid, &opts);
    }
    for eid in 0..ctx.query.num_edges() as EdgeId {
        backward_prune_edge(ctx, &mut fb, eid, &opts);
    }
    fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{double_simulation, SimOptions};
    use rig_graph::GraphBuilder;
    use rig_query::{EdgeKind, PatternQuery};
    use rig_reach::BflIndex;

    /// Prefilter output sandwiches between ms and FB.
    #[test]
    fn prefilter_between_match_sets_and_fb() {
        // two-level graph where one pass is not enough to reach fixpoint
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(0);
        let a1 = b.add_node(0);
        let b0 = b.add_node(1);
        let b1 = b.add_node(1);
        let c0 = b.add_node(2);
        b.add_edge(a0, b0);
        b.add_edge(a1, b1);
        b.add_edge(b0, c0);
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        let ms = ctx.match_sets();
        let pf = prefilter(&ctx);
        let fb = double_simulation(&ctx, &SimOptions::exact()).fb;
        for i in 0..q.num_nodes() {
            assert!(pf[i].is_subset(&ms[i]), "node {i}: pf ⊄ ms");
            assert!(fb[i].is_subset(&pf[i]), "node {i}: fb ⊄ pf");
        }
        // b1 has no c child: pruned by prefilter's forward pass
        assert!(!pf[1].contains(b1));
        // a1's only b child (b1) dies, but a single pass misses a1 because
        // the edge (A,B) was processed before (B,C) shrank FB(B) ... the
        // backward pass cannot recover it either. Exact FB does prune a1.
        assert!(!fb[0].contains(a1));
    }
}
