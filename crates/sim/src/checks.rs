//! Per-edge pruning primitives shared by all three FB algorithms.
//!
//! `forward_prune_edge` enforces condition 2 of Def. 1 for one query edge
//! `(qi, qj)`: every surviving candidate of `qi` must have a qualified
//! successor among the candidates of `qj`. `backward_prune_edge` enforces
//! condition 3 symmetrically. Both return the set of nodes they pruned so
//! callers can maintain change flags and traces.

use crate::{DirectCheckMode, ReachCheckMode, SimContext, SimOptions};
use rig_bitset::Bitset;
use rig_graph::NodeId;
use rig_query::{EdgeId, EdgeKind};
use rig_reach::{ancestors_of_set, descendants_of_set};

/// Union of out-neighbor lists of all members of `set` (computed straight
/// off the CSR — the "⋃ adjf(v)" half of the bitBat batch operation).
pub(crate) fn union_out(ctx: &SimContext<'_>, set: &Bitset) -> Bitset {
    let mut acc: Vec<NodeId> = Vec::new();
    for v in set.iter() {
        acc.extend_from_slice(ctx.graph.out_neighbors(v));
    }
    acc.sort_unstable();
    acc.dedup();
    Bitset::from_sorted_dedup(&acc)
}

/// Union of in-neighbor lists of all members of `set`.
pub(crate) fn union_in(ctx: &SimContext<'_>, set: &Bitset) -> Bitset {
    let mut acc: Vec<NodeId> = Vec::new();
    for v in set.iter() {
        acc.extend_from_slice(ctx.graph.in_neighbors(v));
    }
    acc.sort_unstable();
    acc.dedup();
    Bitset::from_sorted_dedup(&acc)
}

/// Prunes `fb[qi]` (tail side) of edge `eid`; returns pruned node ids.
pub fn forward_prune_edge(
    ctx: &SimContext<'_>,
    fb: &mut [Bitset],
    eid: EdgeId,
    opts: &SimOptions,
) -> Vec<NodeId> {
    let e = ctx.query.edge(eid);
    let (qi, qj) = (e.from as usize, e.to as usize);
    if fb[qi].is_empty() {
        return Vec::new();
    }
    match e.kind {
        EdgeKind::Direct => match opts.direct_mode {
            DirectCheckMode::BitBat => {
                // v survives iff v ∈ ⋃_{w ∈ FB(qj)} adjb(w)
                let qualified = union_in(ctx, &fb[qj]);
                shrink_to(&mut fb[qi], &qualified)
            }
            DirectCheckMode::BitIter => {
                let keep = fb[qj].clone();
                prune_by(&mut fb[qi], |v| {
                    Bitset::from_sorted_dedup(ctx.graph.out_neighbors(v)).intersects(&keep)
                })
            }
            DirectCheckMode::BinSearch => {
                let keep = fb[qj].clone();
                prune_by(&mut fb[qi], |v| {
                    let adj = ctx.graph.out_neighbors(v);
                    keep.iter().any(|w| adj.binary_search(&w).is_ok())
                })
            }
        },
        EdgeKind::Reachability => match opts.reach_mode {
            ReachCheckMode::BfsSets => {
                let qualified = ancestors_of_set(ctx.graph, &fb[qj]);
                shrink_to(&mut fb[qi], &qualified)
            }
            ReachCheckMode::PairwiseIndex => {
                let keep = fb[qj].clone();
                prune_by(&mut fb[qi], |v| keep.iter().any(|w| ctx.reach.reaches(v, w)))
            }
        },
    }
}

/// Prunes `fb[qj]` (head side) of edge `eid`; returns pruned node ids.
pub fn backward_prune_edge(
    ctx: &SimContext<'_>,
    fb: &mut [Bitset],
    eid: EdgeId,
    opts: &SimOptions,
) -> Vec<NodeId> {
    let e = ctx.query.edge(eid);
    let (qi, qj) = (e.from as usize, e.to as usize);
    if fb[qj].is_empty() {
        return Vec::new();
    }
    match e.kind {
        EdgeKind::Direct => match opts.direct_mode {
            DirectCheckMode::BitBat => {
                let qualified = union_out(ctx, &fb[qi]);
                shrink_to(&mut fb[qj], &qualified)
            }
            DirectCheckMode::BitIter => {
                let keep = fb[qi].clone();
                prune_by(&mut fb[qj], |v| {
                    Bitset::from_sorted_dedup(ctx.graph.in_neighbors(v)).intersects(&keep)
                })
            }
            DirectCheckMode::BinSearch => {
                let keep = fb[qi].clone();
                prune_by(&mut fb[qj], |v| {
                    let adj = ctx.graph.in_neighbors(v);
                    keep.iter().any(|w| adj.binary_search(&w).is_ok())
                })
            }
        },
        EdgeKind::Reachability => match opts.reach_mode {
            ReachCheckMode::BfsSets => {
                let qualified = descendants_of_set(ctx.graph, &fb[qi]);
                shrink_to(&mut fb[qj], &qualified)
            }
            ReachCheckMode::PairwiseIndex => {
                let keep = fb[qi].clone();
                prune_by(&mut fb[qj], |v| keep.iter().any(|u| ctx.reach.reaches(u, v)))
            }
        },
    }
}

/// `set ∩= qualified`, returning the removed elements.
fn shrink_to(set: &mut Bitset, qualified: &Bitset) -> Vec<NodeId> {
    let removed: Vec<NodeId> = set.and_not(qualified).iter().collect();
    if !removed.is_empty() {
        set.and_assign(qualified);
    }
    removed
}

/// Retains elements satisfying `pred`, returning the removed ones.
fn prune_by(set: &mut Bitset, mut pred: impl FnMut(NodeId) -> bool) -> Vec<NodeId> {
    let removed: Vec<NodeId> = set.iter().filter(|&v| !pred(v)).collect();
    for &v in &removed {
        set.remove(v);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::GraphBuilder;
    use rig_query::{EdgeKind, PatternQuery};
    use rig_reach::BflIndex;

    fn chain_graph() -> rig_graph::DataGraph {
        // 0:a -> 1:b -> 2:c ; 3:a (no children) ; 4:b (no c below)
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(2);
        let _n3 = b.add_node(0);
        let n4 = b.add_node(1);
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        b.add_edge(n0, n4);
        b.build()
    }

    fn ab_query(kind: EdgeKind) -> PatternQuery {
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, kind);
        q
    }

    #[test]
    fn forward_prune_direct_all_modes_agree() {
        let g = chain_graph();
        let q = ab_query(EdgeKind::Direct);
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        for mode in [DirectCheckMode::BinSearch, DirectCheckMode::BitIter, DirectCheckMode::BitBat]
        {
            let opts = SimOptions { direct_mode: mode, ..SimOptions::default() };
            let mut fb = ctx.match_sets();
            let pruned = forward_prune_edge(&ctx, &mut fb, 0, &opts);
            assert_eq!(pruned, vec![3], "{mode:?}"); // a-node 3 has no b child
            assert_eq!(fb[0].to_vec(), vec![0]);
        }
    }

    #[test]
    fn backward_prune_direct_all_modes_agree() {
        let g = chain_graph();
        let q = ab_query(EdgeKind::Direct);
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        for mode in [DirectCheckMode::BinSearch, DirectCheckMode::BitIter, DirectCheckMode::BitBat]
        {
            let opts = SimOptions { direct_mode: mode, ..SimOptions::default() };
            let mut fb = ctx.match_sets();
            let pruned = backward_prune_edge(&ctx, &mut fb, 0, &opts);
            assert!(pruned.is_empty(), "{mode:?}"); // both b nodes have a parents
            assert_eq!(fb[1].to_vec(), vec![1, 4]);
        }
    }

    #[test]
    fn reachability_prune_both_modes_agree() {
        let g = chain_graph();
        let mut q = PatternQuery::new(vec![0, 2]); // A ⇝ C
        q.add_edge(0, 1, EdgeKind::Reachability);
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        for mode in [ReachCheckMode::PairwiseIndex, ReachCheckMode::BfsSets] {
            let opts = SimOptions { reach_mode: mode, ..SimOptions::default() };
            let mut fb = ctx.match_sets();
            let fp = forward_prune_edge(&ctx, &mut fb, 0, &opts);
            assert_eq!(fp, vec![3], "{mode:?}"); // node 3 reaches nothing
            let bp = backward_prune_edge(&ctx, &mut fb, 0, &opts);
            assert!(bp.is_empty(), "{mode:?}");
            assert_eq!(fb[0].to_vec(), vec![0]);
            assert_eq!(fb[1].to_vec(), vec![2]);
        }
    }

    #[test]
    fn empty_side_is_noop() {
        let g = chain_graph();
        let q = ab_query(EdgeKind::Direct);
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        let opts = SimOptions::default();
        let mut fb = vec![rig_bitset::Bitset::new(), ctx.match_sets()[1].clone()];
        assert!(forward_prune_edge(&ctx, &mut fb, 0, &opts).is_empty());
    }
}
