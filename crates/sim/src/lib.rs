//! Double simulation (§4.2–§4.4 of the paper).
//!
//! The *double simulation* `FB` of query `Q` by graph `G` is the largest
//! relation `S ⊆ V_Q × V_G` such that `(q, v) ∈ S` implies: labels match,
//! every outgoing query edge of `q` can be followed from `v` into `S`
//! (forward condition), and every incoming query edge of `q` can be
//! followed backward from `v` into `S` (backward condition). Direct query
//! edges follow data edges; reachability query edges follow paths.
//!
//! `FB(q)` always sandwiches the occurrence set: `os(q) ⊆ FB(q) ⊆ ms(q)`,
//! so pruning a node out of `FB` can never lose an answer. Three
//! algorithms compute it:
//!
//! * [`SimAlgorithm::Basic`] — `FBSimBas` (Alg. 1): iterate forward and
//!   backward prunes over edges in arbitrary order until fixpoint;
//! * [`SimAlgorithm::Dag`] — `FBSimDag` (Alg. 2): visit nodes in reverse
//!   topological order (forward conditions) then topological order
//!   (backward conditions); converges in fewer passes on dags;
//! * [`SimAlgorithm::DagDelta`] — `FBSim` (Alg. 3, "Dag+Δ"): decompose a
//!   cyclic pattern into a spanning dag plus back edges, alternate
//!   `FBSimDag` on the dag part with `FBSimBas` on the back edges.
//!
//! Orthogonal knobs reproduce the §7.4 ablations: the direct-edge check
//! implementation ([`DirectCheckMode`]: `binSearch` / `bitIter` / `bitBat`,
//! Fig. 12a), the reachability-edge check ([`ReachCheckMode`]), change-flag
//! pass skipping (`DagMap`, Fig. 12b) and the N-pass approximation of §4.5.

mod algorithms;
mod checks;
mod prefilter;

pub use algorithms::{double_simulation, double_simulation_seeded};
pub use checks::{backward_prune_edge, forward_prune_edge};
pub use prefilter::prefilter;

use rig_bitset::Bitset;
use rig_graph::GraphView;
use rig_query::PatternQuery;
use rig_reach::Reachability;

/// Everything a simulation pass needs to look at.
///
/// The graph is a [`GraphView`] — the immutable base CSR or a delta
/// [`rig_graph::Snapshot`] — so the same simulation code prunes over a
/// frozen graph and over an uncompacted overlay. When the view is a dirty
/// snapshot, `reach` must be a delta-aware oracle (e.g.
/// [`rig_reach::SnapshotReach`]), never the base-only BFL index.
pub struct SimContext<'a> {
    pub graph: GraphView<'a>,
    pub query: &'a PatternQuery,
    /// `Sync` so one context can be shared by parallel RIG-construction
    /// workers (every in-tree oracle is plain data).
    pub reach: &'a (dyn Reachability + Sync),
}

impl<'a> SimContext<'a> {
    pub fn new(
        graph: impl Into<GraphView<'a>>,
        query: &'a PatternQuery,
        reach: &'a (dyn Reachability + Sync),
    ) -> Self {
        SimContext { graph: graph.into(), query, reach }
    }

    /// The match sets `ms(q)` — label inverted lists — for every query node.
    pub fn match_sets(&self) -> Vec<Bitset> {
        self.query
            .labels()
            .iter()
            .map(|&l| {
                if (l as usize) < self.graph.num_labels() {
                    self.graph.label_bitset(l).clone()
                } else {
                    Bitset::new()
                }
            })
            .collect()
    }
}

/// Which fixpoint algorithm computes `FB` (§4.3–§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimAlgorithm {
    /// `FBSimBas` — arbitrary edge order ("Gra" in Fig. 12b).
    Basic,
    /// `FBSimDag` — topological node order ("Dag"); falls back to
    /// [`SimAlgorithm::DagDelta`] automatically on cyclic patterns.
    Dag,
    /// `FBSim` — Dag + back-edge delta (Alg. 3).
    DagDelta,
}

/// Implementation of the direct-edge connectivity check (§4.5, Fig. 12a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectCheckMode {
    /// Per candidate pair, binary search in the adjacency list.
    BinSearch,
    /// Per candidate node, bitmap AND of its adjacency list with the
    /// candidate set of the other endpoint.
    BitIter,
    /// One batch per (edge, direction): union the adjacency bitmaps of one
    /// side, intersect with the other side ("bitBat").
    BitBat,
}

/// Implementation of the reachability-edge check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachCheckMode {
    /// Per candidate pair, probe the reachability index (BFL).
    PairwiseIndex,
    /// One multi-source BFS per (edge, direction): intersect with the
    /// ancestor/descendant set of the other side's candidates.
    BfsSets,
}

/// Tuning options for [`double_simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    pub algorithm: SimAlgorithm,
    pub direct_mode: DirectCheckMode,
    pub reach_mode: ReachCheckMode,
    /// Stop after this many passes even if not yet stable (the §4.5
    /// approximation; the paper fixes N = 3 in its evaluation). `None`
    /// runs to fixpoint.
    pub max_passes: Option<usize>,
    /// Skip re-checking query nodes whose neighborhood did not change in
    /// the previous pass (the "DagMap" optimization of Fig. 12b).
    pub change_flags: bool,
    /// Record per-step prune events (used to reproduce Figs. 4 and 5).
    pub trace: bool,
    /// Stop at the next pass boundary once this instant has passed. Like
    /// `max_passes`, stopping early leaves a superset of `FB`, so the
    /// result is still sound — expansion just prunes less.
    pub deadline: Option<std::time::Instant>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            algorithm: SimAlgorithm::DagDelta,
            direct_mode: DirectCheckMode::BitBat,
            reach_mode: ReachCheckMode::BfsSets,
            max_passes: None,
            change_flags: true,
            trace: false,
            deadline: None,
        }
    }
}

impl SimOptions {
    /// The paper's evaluation configuration: Dag+Δ with batch checks and a
    /// 3-pass cap (§4.5).
    pub fn paper_default() -> Self {
        SimOptions { max_passes: Some(3), ..Default::default() }
    }

    /// Exact fixpoint — what correctness proofs and ground-truth tests use.
    pub fn exact() -> Self {
        SimOptions::default()
    }
}

/// One recorded prune event: pass number, step (odd = forward, even =
/// backward, following Fig. 4), query node, nodes pruned at that step.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub pass: usize,
    pub step: usize,
    pub qnode: rig_query::QNode,
    pub pruned: Vec<rig_graph::NodeId>,
}

/// Result of a double-simulation computation.
#[derive(Debug)]
pub struct SimResult {
    /// `fb[q]` = FB(q) for each query node.
    pub fb: Vec<Bitset>,
    /// Number of completed passes.
    pub passes: usize,
    /// Total nodes pruned from all candidate sets.
    pub pruned: u64,
    /// Trace events, when [`SimOptions::trace`] was set.
    pub trace: Vec<TraceEvent>,
}

impl SimResult {
    /// True iff some candidate set is empty (query answer is empty; RIG
    /// construction can stop early, §4.3).
    pub fn any_empty(&self) -> bool {
        self.fb.iter().any(|s| s.is_empty())
    }

    /// Total candidate count across query nodes.
    pub fn total_candidates(&self) -> u64 {
        self.fb.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::GraphBuilder;
    use rig_query::{fig2_query, EdgeKind, PatternQuery};
    use rig_reach::BflIndex;

    /// The running-example data graph (Fig. 2(b) reconstruction): see
    /// rig-datasets for the canonical copy. Node ids:
    /// a0=0 a1=1 a2=2 b0=3 b1=4 b2=5 b3=6 c0=7 c1=8 c2=9.
    pub fn fig2_graph() -> rig_graph::DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0); // a
        }
        for _ in 0..4 {
            b.add_node(1); // b
        }
        for _ in 0..3 {
            b.add_node(2); // c
        }
        b.add_edge(1, 3); // a1 -> b0
        b.add_edge(1, 7); // a1 -> c0
        b.add_edge(3, 8); // b0 -> c1
        b.add_edge(8, 7); // c1 -> c0
        b.add_edge(2, 5); // a2 -> b2
        b.add_edge(2, 9); // a2 -> c2
        b.add_edge(5, 9); // b2 -> c2
        b.add_edge(5, 8); // b2 -> c1
        b.add_edge(0, 4); // a0 -> b1
        b.add_edge(4, 7); // b1 -> c0
        b.add_edge(6, 0); // b3 -> a0
        b.build()
    }

    fn all_option_combos() -> Vec<SimOptions> {
        let mut out = Vec::new();
        for algorithm in [SimAlgorithm::Basic, SimAlgorithm::Dag, SimAlgorithm::DagDelta] {
            for direct_mode in
                [DirectCheckMode::BinSearch, DirectCheckMode::BitIter, DirectCheckMode::BitBat]
            {
                for reach_mode in [ReachCheckMode::PairwiseIndex, ReachCheckMode::BfsSets] {
                    for change_flags in [false, true] {
                        out.push(SimOptions {
                            algorithm,
                            direct_mode,
                            reach_mode,
                            max_passes: None,
                            change_flags,
                            ..Default::default()
                        });
                    }
                }
            }
        }
        out
    }

    /// Ground truth for the Fig. 2 example, worked out by hand (see the
    /// homomorphism analysis in the test below): FB(A) = {a1, a2},
    /// FB(B) = {b0, b2}, FB(C) = {c0, c2}.
    #[test]
    fn fig2_double_sim_all_configurations_agree() {
        let g = fig2_graph();
        let q = fig2_query();
        let reach = BflIndex::new(&g);
        for opts in all_option_combos() {
            let ctx = SimContext::new(&g, &q, &reach);
            let r = double_simulation(&ctx, &opts);
            assert_eq!(r.fb[0].to_vec(), vec![1, 2], "{opts:?} FB(A)");
            assert_eq!(r.fb[1].to_vec(), vec![3, 5], "{opts:?} FB(B)");
            assert_eq!(r.fb[2].to_vec(), vec![7, 9], "{opts:?} FB(C)");
            assert!(!r.any_empty());
        }
    }

    /// Forward-only and backward-only simulations on the same example
    /// (Table 1 shape: F and B are strictly larger than FB).
    #[test]
    fn fb_is_contained_in_match_sets_and_nonempty_here() {
        let g = fig2_graph();
        let q = fig2_query();
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        let ms = ctx.match_sets();
        let r = double_simulation(&ctx, &SimOptions::exact());
        for (i, fb) in r.fb.iter().enumerate() {
            assert!(fb.is_subset(&ms[i]), "FB({i}) ⊄ ms({i})");
            assert!(fb.len() < ms[i].len(), "FB({i}) should prune something");
        }
    }

    /// Empty-answer early termination (the Fig. 4 scenario): if the query
    /// cannot match, every FB set drains to empty.
    #[test]
    fn empty_answer_drains_all_sets() {
        // graph with a and b only: A->B->C query cannot match.
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(0);
        let b0 = b.add_node(1);
        b.add_node(2); // c node exists but disconnected
        b.add_edge(a0, b0);
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        for opts in all_option_combos() {
            let r = double_simulation(&ctx, &opts);
            assert!(r.any_empty(), "{opts:?}");
            assert!(r.fb.iter().all(|s| s.is_empty()), "{opts:?}");
        }
    }

    /// A cyclic (directed) pattern exercises the Dag+Δ path.
    #[test]
    fn cyclic_pattern_all_algorithms_agree() {
        // data: 2-cycle x<->y with labels 0,1 plus noise
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        let z = b.add_node(0); // no cycle
        b.add_edge(x, y);
        b.add_edge(y, x);
        b.add_edge(z, y);
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 0, EdgeKind::Reachability);
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        for opts in all_option_combos() {
            let r = double_simulation(&ctx, &opts);
            assert_eq!(r.fb[0].to_vec(), vec![x], "{opts:?}");
            assert_eq!(r.fb[1].to_vec(), vec![y], "{opts:?}");
        }
    }

    /// The N-pass cap yields a superset of the exact fixpoint (§4.5: the
    /// approximation keeps soundness, it only prunes less).
    #[test]
    fn pass_cap_is_sound_overapproximation() {
        let g = fig2_graph();
        let q = fig2_query();
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        let exact = double_simulation(&ctx, &SimOptions::exact());
        for cap in 1..=4usize {
            let approx = double_simulation(
                &ctx,
                &SimOptions { max_passes: Some(cap), ..SimOptions::default() },
            );
            for i in 0..q.num_nodes() {
                assert!(exact.fb[i].is_subset(&approx.fb[i]), "cap={cap} node {i}: exact ⊄ approx");
            }
        }
    }

    /// Fig. 5's claim: FBSimDag needs no more steps than FBSimBas.
    #[test]
    fn dag_converges_in_no_more_passes_than_basic() {
        let g = fig2_graph();
        let q = fig2_query();
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        let bas = double_simulation(
            &ctx,
            &SimOptions { algorithm: SimAlgorithm::Basic, ..SimOptions::exact() },
        );
        let dag = double_simulation(
            &ctx,
            &SimOptions { algorithm: SimAlgorithm::Dag, ..SimOptions::exact() },
        );
        assert!(dag.passes <= bas.passes, "dag={} bas={}", dag.passes, bas.passes);
    }

    #[test]
    fn trace_records_pruning() {
        let g = fig2_graph();
        let q = fig2_query();
        let reach = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &reach);
        let r = double_simulation(&ctx, &SimOptions { trace: true, ..SimOptions::exact() });
        let total_traced: usize = r.trace.iter().map(|e| e.pruned.len()).sum();
        assert_eq!(total_traced as u64, r.pruned);
        assert!(r.pruned > 0);
    }
}
