//! Randomized agreement between the two reachability-edge expansion modes
//! (per-pair BFL with/without early termination vs pruned DFS), and
//! invariants of the RIG adjacency structure.

use proptest::prelude::*;
use rig_graph::GraphBuilder;
use rig_index::{build_rig, ReachExpandMode, RigOptions};
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::SimContext;

fn setup_strategy() -> impl Strategy<Value = (rig_graph::DataGraph, PatternQuery)> {
    (
        prop::collection::vec(0u32..3, 4..25),
        prop::collection::vec((0u32..25, 0u32..25), 5..60),
        prop::collection::vec(prop::bool::ANY, 3),
    )
        .prop_map(|(labels, edges, kinds)| {
            let n = labels.len() as u32;
            let mut b = GraphBuilder::new();
            for l in labels {
                b.add_node(l);
            }
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let mut q = PatternQuery::new(vec![0, 1, 2]);
            let kind = |b: bool| if b { EdgeKind::Direct } else { EdgeKind::Reachability };
            q.add_edge(0, 1, kind(kinds[0]));
            q.add_edge(1, 2, kind(kinds[1]));
            q.add_edge(0, 2, kind(kinds[2]));
            (g, q)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn expansion_modes_agree((g, q) in setup_strategy()) {
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let base = build_rig(
            &ctx,
            &bfl,
            &RigOptions {
                reach_expand: ReachExpandMode::PrunedDfs,
                ..RigOptions::exact()
            },
        );
        for early in [false, true] {
            let other = build_rig(
                &ctx,
                &bfl,
                &RigOptions {
                    reach_expand: ReachExpandMode::PairwiseBfl,
                    early_termination: early,
                    ..RigOptions::exact()
                },
            );
            prop_assert_eq!(base.stats.node_count, other.stats.node_count);
            prop_assert_eq!(base.stats.edge_count, other.stats.edge_count, "early={}", early);
            for eid in 0..q.num_edges() as u32 {
                let p = q.edge(eid).from as usize;
                for u in base.cos(p).iter() {
                    prop_assert_eq!(
                        base.successors(eid, u).map(|s| s.to_vec()),
                        other.successors(eid, u).map(|s| s.to_vec()),
                        "edge {} source {} early={}", eid, u, early
                    );
                }
            }
        }
    }

    /// Forward and backward RIG adjacency must mirror each other exactly.
    #[test]
    fn forward_backward_adjacency_mirror((g, q) in setup_strategy()) {
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        for eid in 0..q.num_edges() as u32 {
            let e = q.edge(eid);
            for u in rig.cos(e.from as usize).iter() {
                if let Some(succ) = rig.successors(eid, u) {
                    for v in succ.iter() {
                        let pred = rig.predecessors(eid, v);
                        prop_assert!(
                            pred.is_some_and(|p| p.contains(u)),
                            "edge {}: ({}, {}) missing backward", eid, u, v
                        );
                    }
                }
            }
            for v in rig.cos(e.to as usize).iter() {
                if let Some(pred) = rig.predecessors(eid, v) {
                    for u in pred.iter() {
                        let succ = rig.successors(eid, u);
                        prop_assert!(
                            succ.is_some_and(|s| s.contains(v)),
                            "edge {}: ({}, {}) missing forward", eid, u, v
                        );
                    }
                }
            }
        }
    }

    /// RIG edges only connect candidate nodes (k-partiteness, Def. 4.1).
    #[test]
    fn rig_edges_stay_within_candidate_sets((g, q) in setup_strategy()) {
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        for eid in 0..q.num_edges() as u32 {
            let e = q.edge(eid);
            for u in rig.cos(e.from as usize).iter() {
                if let Some(succ) = rig.successors(eid, u) {
                    prop_assert!(succ.is_subset(&rig.cos(e.to as usize)));
                }
            }
        }
    }
}
