//! The Runtime Index Graph (RIG) and `BuildRIG` (§4 of the paper).
//!
//! A RIG of query `Q` over graph `G` is a k-partite graph with one
//! independent node set `cos(q)` per query node (`os(q) ⊆ cos(q) ⊆ ms(q)`)
//! and, per query edge `(p, q)`, a set of edges from `cos(p)` to `cos(q)`
//! sandwiched the same way (Def. 4.1). It losslessly summarizes every
//! homomorphism from `Q` to `G` (Prop. 4.1) and is the search space MJoin
//! enumerates over.
//!
//! [`build_rig`] implements Alg. 4: a **node selection** phase (double
//! simulation, optionally preceded by the cheaper pre-filter, or either
//! alone for the GM-S / GM-F ablations of Fig. 13) and a **node expansion**
//! phase that materializes RIG adjacency as bitmaps — direct query edges
//! via `adjf(v) ∩ cos(q)` intersections, reachability edges via BFL probes
//! ordered by DFS-interval `begin` with the early-termination cut of §4.5.

use std::time::{Duration, Instant};

use rig_bitset::Bitset;
use rig_graph::{FxHashMap, NodeId};
use rig_query::{EdgeId, EdgeKind};
use rig_reach::BflIndex;
use rig_sim::{double_simulation, prefilter, SimContext, SimOptions};

/// Node-selection strategy (which Fig. 13 variant to build).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMode {
    /// GM: pre-filter, then double simulation.
    PrefilterThenSim,
    /// GM-S: double simulation only.
    SimOnly,
    /// GM-F: pre-filter only (no simulation).
    PrefilterOnly,
    /// Match RIG: raw label match sets (the largest valid RIG, Fig. 2(d)).
    MatchSets,
}

/// How reachability query edges are expanded into RIG edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachExpandMode {
    /// Per-pair BFL probes, candidates ordered by interval `begin`, with
    /// early termination (§4.5). The paper's configuration.
    PairwiseBfl,
    /// Per-source pruned DFS collecting reachable candidates; cross-checked
    /// against `PairwiseBfl` in tests.
    PrunedDfs,
}

/// Options for [`build_rig`].
#[derive(Debug, Clone, Copy)]
pub struct RigOptions {
    pub select: SelectMode,
    pub sim: SimOptions,
    pub reach_expand: ReachExpandMode,
    /// Apply the interval-label early-termination cut during expansion.
    pub early_termination: bool,
}

impl Default for RigOptions {
    fn default() -> Self {
        RigOptions {
            select: SelectMode::PrefilterThenSim,
            sim: SimOptions::paper_default(),
            reach_expand: ReachExpandMode::PairwiseBfl,
            early_termination: true,
        }
    }
}

impl RigOptions {
    /// Exact-simulation configuration (fixpoint, no pass cap).
    pub fn exact() -> Self {
        RigOptions { sim: SimOptions::exact(), ..Default::default() }
    }
}

/// Phase timings and sizes reported by Fig. 13.
#[derive(Debug, Clone, Default)]
pub struct RigStats {
    pub select_time: Duration,
    pub expand_time: Duration,
    /// Σ |cos(q)| over query nodes.
    pub node_count: u64,
    /// Σ |cos(e)| over query edges.
    pub edge_count: u64,
    /// Simulation passes run during selection.
    pub sim_passes: usize,
    /// Data nodes pruned during selection.
    pub pruned: u64,
}

impl RigStats {
    /// Total RIG size (nodes + edges), the numerator of the Fig. 13(a) ratio.
    pub fn size(&self) -> u64 {
        self.node_count + self.edge_count
    }
}

/// A materialized runtime index graph.
pub struct Rig {
    /// Candidate occurrence set per query node.
    pub cos: Vec<Bitset>,
    /// Per query edge: successor adjacency `u ∈ cos(from) -> {v ∈ cos(to)}`.
    fwd: Vec<FxHashMap<NodeId, Bitset>>,
    /// Per query edge: predecessor adjacency `v ∈ cos(to) -> {u ∈ cos(from)}`.
    bwd: Vec<FxHashMap<NodeId, Bitset>>,
    pub stats: RigStats,
}

impl Rig {
    /// Successors of `u` across query edge `eid` (empty bitset if none).
    pub fn successors(&self, eid: EdgeId, u: NodeId) -> Option<&Bitset> {
        self.fwd[eid as usize].get(&u)
    }

    /// Predecessors of `v` across query edge `eid`.
    pub fn predecessors(&self, eid: EdgeId, v: NodeId) -> Option<&Bitset> {
        self.bwd[eid as usize].get(&v)
    }

    /// True iff some candidate set is empty — the query answer is empty and
    /// enumeration can be skipped entirely.
    pub fn is_empty(&self) -> bool {
        self.cos.iter().any(|c| c.is_empty())
    }

    /// Candidate set cardinality of query node `q` (the statistic the JO
    /// search order greedily minimizes, §5.2).
    pub fn cos_len(&self, q: rig_query::QNode) -> u64 {
        self.cos[q as usize].len()
    }

    /// Total RIG edge cardinality `|cos(e)|` across query edge `eid` (the
    /// `|R_j|` statistic of Thm. 5.1 and the BJ cost model).
    pub fn edge_cardinality(&self, eid: EdgeId) -> u64 {
        self.fwd[eid as usize].values().map(|b| b.len()).sum()
    }

    /// RIG size / data graph size, as reported in Fig. 13(a).
    pub fn size_ratio(&self, g: &rig_graph::DataGraph) -> f64 {
        self.stats.size() as f64 / (g.num_nodes() + g.num_edges()) as f64
    }

    /// Approximate heap footprint (bytes), for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        let cos: usize = self.cos.iter().map(|b| b.heap_bytes()).sum();
        let adj: usize = self
            .fwd
            .iter()
            .chain(self.bwd.iter())
            .flat_map(|m| m.values())
            .map(|b| b.heap_bytes() + std::mem::size_of::<(NodeId, Bitset)>())
            .sum();
        cos + adj
    }
}

/// Builds a RIG for `ctx.query` on `ctx.graph` (Alg. 4). `bfl` supplies the
/// condensation + interval labels used by reachability expansion; it should
/// be the same index `ctx.reach` wraps (the GM facade guarantees this).
pub fn build_rig(ctx: &SimContext<'_>, bfl: &BflIndex, opts: &RigOptions) -> Rig {
    // ---- node selection phase ----
    let select_start = Instant::now();
    let mut sim_passes = 0;
    let mut pruned = 0;
    let cos: Vec<Bitset> = match opts.select {
        SelectMode::MatchSets => ctx.match_sets(),
        SelectMode::PrefilterOnly => prefilter(ctx),
        SelectMode::SimOnly => {
            let r = double_simulation(ctx, &opts.sim);
            sim_passes = r.passes;
            pruned = r.pruned;
            r.fb
        }
        SelectMode::PrefilterThenSim => {
            // The pre-filter is a cheap first pass; feeding its output into
            // the simulation as the initial relation preserves the fixpoint
            // (prefilter output still contains FB).
            let pf = prefilter(ctx);
            let r = double_simulation_seeded(ctx, &opts.sim, pf);
            sim_passes = r.passes;
            pruned = r.pruned;
            r.fb
        }
    };
    let select_time = select_start.elapsed();

    let ne = ctx.query.num_edges();
    let mut rig = Rig {
        cos,
        fwd: vec![FxHashMap::default(); ne],
        bwd: vec![FxHashMap::default(); ne],
        stats: RigStats { select_time, sim_passes, pruned, ..Default::default() },
    };

    // Empty candidate set => empty answer; skip expansion (§4.3).
    if rig.is_empty() {
        for c in rig.cos.iter_mut() {
            c.clear();
        }
        rig.stats.node_count = 0;
        return rig;
    }

    // ---- node expansion phase ----
    let expand_start = Instant::now();
    for eid in 0..ne as EdgeId {
        expand_edge(ctx, bfl, opts, &mut rig, eid);
    }
    rig.stats.expand_time = expand_start.elapsed();
    rig.stats.node_count = rig.cos.iter().map(|c| c.len()).sum();
    rig.stats.edge_count = rig.fwd.iter().flat_map(|m| m.values()).map(|b| b.len()).sum();
    rig
}

/// Double simulation starting from a pre-pruned relation instead of the raw
/// match sets.
fn double_simulation_seeded(
    ctx: &SimContext<'_>,
    opts: &SimOptions,
    seed: Vec<Bitset>,
) -> rig_sim::SimResult {
    // The rig-sim crate always starts from ms; intersecting its result with
    // the seed is equivalent because both are supersets of FB and
    // simulation is a decreasing fixpoint. To keep the pass accounting of
    // Fig. 12b faithful we run the simulation on the seeded sets by
    // re-running prunes until stable, reusing the public API.
    let mut r = double_simulation(ctx, opts);
    for (acc, s) in r.fb.iter_mut().zip(seed.iter()) {
        acc.and_assign(s);
    }
    r
}

fn expand_edge(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    rig: &mut Rig,
    eid: EdgeId,
) {
    let e = ctx.query.edge(eid);
    let (p, q) = (e.from as usize, e.to as usize);
    match e.kind {
        EdgeKind::Direct => {
            // adjf(v_p) ∩ cos(q) in one bitmap AND per source (§4.5).
            let mut fwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
            let mut bwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
            for u in rig.cos[p].iter() {
                let succ = Bitset::from_sorted_dedup(ctx.graph.out_neighbors(u)).and(&rig.cos[q]);
                if succ.is_empty() {
                    continue;
                }
                for v in succ.iter() {
                    bwd.entry(v).or_default().insert(u);
                }
                fwd.insert(u, succ);
            }
            rig.fwd[eid as usize] = fwd;
            rig.bwd[eid as usize] = bwd;
        }
        EdgeKind::Reachability => match opts.reach_expand {
            ReachExpandMode::PairwiseBfl => expand_reach_pairwise(ctx, bfl, opts, rig, eid, p, q),
            ReachExpandMode::PrunedDfs => expand_reach_dfs(ctx, rig, eid, p, q),
        },
    }
}

/// Reachability expansion with per-pair BFL probes; candidates of `q` are
/// visited in ascending interval `begin` so that scanning can stop at the
/// first candidate with `begin > u.end` (early expansion termination).
fn expand_reach_pairwise(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    rig: &mut Rig,
    eid: EdgeId,
    p: usize,
    q: usize,
) {
    let cond = bfl.condensation();
    let intervals = bfl.intervals();
    // cos(q) sorted by interval begin
    let mut targets: Vec<NodeId> = rig.cos[q].iter().collect();
    if opts.early_termination {
        intervals.sort_nodes_by_begin(cond, &mut targets);
    }
    let mut fwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    let mut bwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    for u in rig.cos[p].iter() {
        let cu = cond.component(u);
        let u_end = intervals.end[cu as usize];
        let mut succ = Bitset::new();
        for &v in &targets {
            if opts.early_termination {
                let cv = cond.component(v);
                if intervals.begin[cv as usize] > u_end {
                    break; // all later candidates are unreachable from u
                }
            }
            if (u != v || cond.nontrivial[cu as usize]) && ctx.reach.reaches(u, v) {
                succ.insert(v);
            }
        }
        if succ.is_empty() {
            continue;
        }
        for v in succ.iter() {
            bwd.entry(v).or_default().insert(u);
        }
        fwd.insert(u, succ);
    }
    rig.fwd[eid as usize] = fwd;
    rig.bwd[eid as usize] = bwd;
}

/// Reachability expansion by one pruned DFS per source node.
fn expand_reach_dfs(ctx: &SimContext<'_>, rig: &mut Rig, eid: EdgeId, p: usize, q: usize) {
    let g = ctx.graph;
    let n = g.num_nodes();
    let mut stamp = vec![u32::MAX; n];
    let mut fwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    let mut bwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    for (epoch, u) in rig.cos[p].iter().enumerate() {
        let epoch = epoch as u32;
        let mut succ = Bitset::new();
        let mut stack: Vec<NodeId> = g.out_neighbors(u).to_vec();
        while let Some(x) = stack.pop() {
            if stamp[x as usize] == epoch {
                continue;
            }
            stamp[x as usize] = epoch;
            if rig.cos[q].contains(x) {
                succ.insert(x);
            }
            stack.extend_from_slice(g.out_neighbors(x));
        }
        if succ.is_empty() {
            continue;
        }
        for v in succ.iter() {
            bwd.entry(v).or_default().insert(u);
        }
        fwd.insert(u, succ);
    }
    rig.fwd[eid as usize] = fwd;
    rig.bwd[eid as usize] = bwd;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder};
    use rig_query::{fig2_query, EdgeKind, PatternQuery};

    /// Fig. 2(b) reconstruction (same node ids as rig-sim's tests).
    fn fig2_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    fn build(g: &DataGraph, q: &PatternQuery, opts: &RigOptions) -> Rig {
        let bfl = BflIndex::new(g);
        let ctx = SimContext::new(g, q, &bfl);
        build_rig(&ctx, &bfl, opts)
    }

    /// The refined RIG on the running example: candidate sets equal the FB
    /// sets; the reachability edge (B,C) keeps one redundant edge
    /// (b2 -> c0), the analogue of the paper's red dashed edge in Fig. 2(e).
    #[test]
    fn fig2_refined_rig() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = build(&g, &q, &RigOptions::exact());
        assert_eq!(rig.cos[0].to_vec(), vec![1, 2]); // {a1, a2}
        assert_eq!(rig.cos[1].to_vec(), vec![3, 5]); // {b0, b2}
        assert_eq!(rig.cos[2].to_vec(), vec![7, 9]); // {c0, c2}
                                                     // edge (A,B) direct
        assert_eq!(rig.successors(0, 1).unwrap().to_vec(), vec![3]);
        assert_eq!(rig.successors(0, 2).unwrap().to_vec(), vec![5]);
        // edge (A,C) direct
        assert_eq!(rig.successors(1, 1).unwrap().to_vec(), vec![7]);
        assert_eq!(rig.successors(1, 2).unwrap().to_vec(), vec![9]);
        // edge (B,C) reachability: b0 => {c0}; b2 => {c0 (redundant!), c2}
        assert_eq!(rig.successors(2, 3).unwrap().to_vec(), vec![7]);
        assert_eq!(rig.successors(2, 5).unwrap().to_vec(), vec![7, 9]);
        // backward adjacency mirrors forward
        assert_eq!(rig.predecessors(2, 7).unwrap().to_vec(), vec![3, 5]);
        assert_eq!(rig.predecessors(2, 9).unwrap().to_vec(), vec![5]);
        // stats
        assert_eq!(rig.stats.node_count, 6);
        assert_eq!(rig.stats.edge_count, 7);
        assert!(!rig.is_empty());
        assert!(rig.size_ratio(&g) > 0.0);
    }

    /// All (select-mode, expand-mode, early-termination) combinations agree
    /// on edges whenever their candidate sets agree; and every variant's
    /// RIG contains the refined RIG (supersets shrink monotonically).
    #[test]
    fn variants_are_supersets_of_refined_rig() {
        let g = fig2_graph();
        let q = fig2_query();
        let refined = build(&g, &q, &RigOptions::exact());
        for select in [SelectMode::MatchSets, SelectMode::PrefilterOnly, SelectMode::SimOnly] {
            let opts = RigOptions { select, ..RigOptions::exact() };
            let r = build(&g, &q, &opts);
            for i in 0..q.num_nodes() {
                assert!(
                    refined.cos[i].is_subset(&r.cos[i]),
                    "{select:?}: refined cos({i}) ⊄ variant"
                );
            }
            assert!(r.stats.size() >= refined.stats.size(), "{select:?}");
        }
    }

    #[test]
    fn expand_modes_agree() {
        let g = fig2_graph();
        let q = fig2_query();
        for early in [false, true] {
            let a = build(
                &g,
                &q,
                &RigOptions {
                    reach_expand: ReachExpandMode::PairwiseBfl,
                    early_termination: early,
                    ..RigOptions::exact()
                },
            );
            let b = build(
                &g,
                &q,
                &RigOptions { reach_expand: ReachExpandMode::PrunedDfs, ..RigOptions::exact() },
            );
            assert_eq!(a.stats.edge_count, b.stats.edge_count, "early={early}");
            for u in a.cos[1].iter() {
                assert_eq!(
                    a.successors(2, u).map(|s| s.to_vec()),
                    b.successors(2, u).map(|s| s.to_vec()),
                    "early={early} u={u}"
                );
            }
        }
    }

    #[test]
    fn empty_rig_early_exit() {
        // no c-labeled node reachable: answer empty
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(0);
        let b0 = b.add_node(1);
        b.add_node(2); // isolated c
        b.add_edge(a0, b0);
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        let rig = build(&g, &q, &RigOptions::exact());
        assert!(rig.is_empty());
        assert_eq!(rig.stats.node_count, 0);
        assert_eq!(rig.stats.edge_count, 0);
    }

    #[test]
    fn match_rig_is_largest() {
        let g = fig2_graph();
        let q = fig2_query();
        let m = build(&g, &q, &RigOptions { select: SelectMode::MatchSets, ..RigOptions::exact() });
        // match sets: 3 a's + 4 b's + 3 c's
        assert_eq!(m.stats.node_count, 10);
        // (A,B) matches: a1->b0, a2->b2, a0->b1 = 3 edges
        assert_eq!(m.fwd[0].values().map(|s| s.len()).sum::<u64>(), 3);
    }

    #[test]
    fn paper_default_three_pass_cap_still_sound() {
        let g = fig2_graph();
        let q = fig2_query();
        let capped = build(&g, &q, &RigOptions::default());
        let exact = build(&g, &q, &RigOptions::exact());
        for i in 0..q.num_nodes() {
            assert!(exact.cos[i].is_subset(&capped.cos[i]));
        }
    }
}
