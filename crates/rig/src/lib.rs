//! The Runtime Index Graph (RIG) and `BuildRIG` (§4 of the paper).
//!
//! A RIG of query `Q` over graph `G` is a k-partite graph with one
//! independent node set `cos(q)` per query node (`os(q) ⊆ cos(q) ⊆ ms(q)`)
//! and, per query edge `(p, q)`, a set of edges from `cos(p)` to `cos(q)`
//! sandwiched the same way (Def. 4.1). It losslessly summarizes every
//! homomorphism from `Q` to `G` (Prop. 4.1) and is the search space MJoin
//! enumerates over.
//!
//! [`build_rig`] implements Alg. 4: a **node selection** phase (double
//! simulation seeded from the cheaper pre-filter, or either alone for the
//! GM-S / GM-F ablations of Fig. 13) and a **node expansion** phase that
//! materializes RIG adjacency — direct query edges via `adjf(v) ∩ cos(q)`
//! intersections, reachability edges via BFL probes ordered by DFS-interval
//! `begin` with the early-termination cut of §4.5.
//!
//! ## Storage layout
//!
//! Candidates and adjacency live in a **CSR layout over dense
//! candidate-local ids** (see `docs/rig-layout.md`): each `cos(q)` keeps a
//! sorted id array (`local id` = index into it, the rank dictionary), and
//! each query edge stores one offset array plus a concatenated arena of
//! sorted local-id runs per direction. Long runs additionally materialize a
//! local-id bitmap row for O(1) membership probes. The backward direction
//! is derived from the forward one by a counting-sort transpose, so
//! expansion never touches a hash map. MJoin's multiway intersections
//! operate directly on these runs ([`AdjRun`]) without allocating.
//!
//! The previous hashmap-of-bitsets representation survives as
//! [`reference::RefRig`] — the differential-testing and benchmark baseline.

pub mod reference;

use std::time::{Duration, Instant};

use rig_bitset::Bitset;
use rig_graph::{FxHashMap, NodeId};
use rig_query::{EdgeId, EdgeKind};
use rig_reach::BflIndex;
use rig_sim::{double_simulation, double_simulation_seeded, prefilter, SimContext, SimOptions};

/// Node-selection strategy (which Fig. 13 variant to build).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMode {
    /// GM: pre-filter, then double simulation seeded from its output.
    PrefilterThenSim,
    /// GM-S: double simulation only.
    SimOnly,
    /// GM-F: pre-filter only (no simulation).
    PrefilterOnly,
    /// Match RIG: raw label match sets (the largest valid RIG, Fig. 2(d)).
    MatchSets,
}

/// How reachability query edges are expanded into RIG edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachExpandMode {
    /// Per-pair BFL probes, candidates ordered by interval `begin`, with
    /// early termination (§4.5). The paper's configuration.
    PairwiseBfl,
    /// Per-source pruned DFS collecting reachable candidates; cross-checked
    /// against `PairwiseBfl` in tests.
    PrunedDfs,
}

/// Options for [`build_rig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RigOptions {
    pub select: SelectMode,
    pub sim: SimOptions,
    pub reach_expand: ReachExpandMode,
    /// Apply the interval-label early-termination cut during expansion.
    pub early_termination: bool,
    /// Worker threads for the node-expansion phase: per-query-edge CSR
    /// blocks are independent, so they are built on scoped threads that
    /// claim edges off an atomic cursor. `0`/`1` = sequential. The
    /// resulting RIG is bit-identical for every thread count.
    pub build_threads: usize,
    /// Hard wall-clock deadline for construction. Selection stops at the
    /// next simulation pass boundary (sound — a superset survives);
    /// expansion *aborts*: past the deadline the build returns an
    /// empty-shaped RIG with [`RigStats::timed_out`] set, which callers
    /// must report as a timeout, never as an empty answer.
    pub deadline: Option<Instant>,
}

impl Default for RigOptions {
    fn default() -> Self {
        RigOptions {
            select: SelectMode::PrefilterThenSim,
            sim: SimOptions::paper_default(),
            reach_expand: ReachExpandMode::PairwiseBfl,
            early_termination: true,
            build_threads: 1,
            deadline: None,
        }
    }
}

impl RigOptions {
    /// Exact-simulation configuration (fixpoint, no pass cap).
    pub fn exact() -> Self {
        RigOptions { sim: SimOptions::exact(), ..Default::default() }
    }

    /// Same options with `build_threads` workers expanding query edges.
    pub fn with_build_threads(self, build_threads: usize) -> Self {
        RigOptions { build_threads, ..self }
    }

    /// Same options with a construction deadline (propagated to the
    /// simulation pass cap as well).
    pub fn with_deadline(self, deadline: Option<Instant>) -> Self {
        RigOptions { deadline, sim: SimOptions { deadline, ..self.sim }, ..self }
    }
}

/// Phase timings and sizes reported by Fig. 13.
#[derive(Debug, Clone, Default)]
pub struct RigStats {
    pub select_time: Duration,
    pub expand_time: Duration,
    /// Σ |cos(q)| over query nodes.
    pub node_count: u64,
    /// Σ |cos(e)| over query edges.
    pub edge_count: u64,
    /// Simulation passes run during selection.
    pub sim_passes: usize,
    /// Data nodes pruned out of the match sets during selection (pre-filter
    /// prunes plus simulation prunes).
    pub pruned: u64,
    /// The construction deadline expired during expansion: the RIG is an
    /// empty shell and must be reported as a timeout, not an empty answer.
    pub timed_out: bool,
}

impl RigStats {
    /// Total RIG size (nodes + edges), the numerator of the Fig. 13(a) ratio.
    pub fn size(&self) -> u64 {
        self.node_count + self.edge_count
    }
}

/// Runs at least this long also materialize a dense bitmap row.
const DENSE_MIN_RUN: usize = 64;
const NO_DENSE: u32 = u32::MAX;

/// One adjacency run of the RIG: the (sorted) local-id neighbor list of one
/// candidate across one query edge, plus an optional dense bitmap over the
/// target side's local-id space for O(1) probes. Copyable view — the MJoin
/// hot loop passes these around by value without touching the heap.
#[derive(Debug, Clone, Copy)]
pub struct AdjRun<'a> {
    /// Sorted local ids of the neighbors on the target side.
    pub list: &'a [u32],
    dense: Option<&'a [u64]>,
}

impl<'a> AdjRun<'a> {
    /// Empty run (used for out-of-range sources).
    pub const EMPTY: AdjRun<'static> = AdjRun { list: &[], dense: None };

    #[inline]
    pub fn len(&self) -> usize {
        self.list.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Membership probe: O(1) against the dense row when present, binary
    /// search in the sorted run otherwise.
    #[inline]
    pub fn contains(&self, local: u32) -> bool {
        match self.dense {
            Some(words) => (words[(local >> 6) as usize] >> (local & 63)) & 1 == 1,
            None => self.list.binary_search(&local).is_ok(),
        }
    }

    /// Monotone membership probe for ascending query sequences: `cursor`
    /// persists between calls and the sparse path gallops forward from it
    /// (exponential search), so probing a whole ascending driver run costs
    /// O(len) total instead of O(len · log len).
    #[inline]
    pub fn contains_from(&self, cursor: &mut usize, local: u32) -> bool {
        if let Some(words) = self.dense {
            return (words[(local >> 6) as usize] >> (local & 63)) & 1 == 1;
        }
        let list = self.list;
        let mut lo = *cursor;
        if lo >= list.len() {
            return false;
        }
        if list[lo] >= local {
            return list[lo] == local;
        }
        // gallop: find a bound with list[lo + bound] >= local
        let mut bound = 1usize;
        while lo + bound < list.len() && list[lo + bound] < local {
            bound <<= 1;
        }
        lo += bound >> 1; // last position known to be < local
        let hi = (*cursor + bound + 1).min(list.len());
        match list[lo..hi].binary_search(&local) {
            Ok(p) => {
                *cursor = lo + p;
                true
            }
            Err(p) => {
                *cursor = lo + p;
                false
            }
        }
    }
}

/// One direction of one query edge's adjacency in CSR form over local ids.
#[derive(Debug, Default, Clone)]
struct CsrDir {
    /// `offsets[s]..offsets[s + 1]` delimits source `s`'s run in `targets`.
    offsets: Vec<u32>,
    /// Concatenated sorted local-id runs.
    targets: Vec<u32>,
    /// Per-source dense row index ([`NO_DENSE`] = sparse only); empty when
    /// no run qualified for a bitmap.
    dense_idx: Vec<u32>,
    /// Bitmap arena, `words_per_row` words per dense row.
    dense_words: Vec<u64>,
    words_per_row: usize,
}

impl CsrDir {
    fn new(offsets: Vec<u32>, targets: Vec<u32>, n_targets: usize) -> CsrDir {
        let mut dir = CsrDir {
            offsets,
            targets,
            dense_idx: Vec::new(),
            dense_words: Vec::new(),
            words_per_row: n_targets.div_ceil(64),
        };
        dir.build_dense_rows();
        dir
    }

    fn n_sources(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn run_bounds(&self, s: usize) -> (usize, usize) {
        (self.offsets[s] as usize, self.offsets[s + 1] as usize)
    }

    /// A run qualifies for a dense row when it is long enough to amortize
    /// the bitmap and no sparser than two targets per word (so the bitmap
    /// costs at most half the run's own footprint).
    fn build_dense_rows(&mut self) {
        let wpr = self.words_per_row;
        if wpr == 0 {
            return;
        }
        let qualifies = |len: usize| len >= DENSE_MIN_RUN && len >= 2 * wpr;
        let mut rows = 0u32;
        for s in 0..self.n_sources() {
            let (lo, hi) = self.run_bounds(s);
            if qualifies(hi - lo) {
                rows += 1;
            }
        }
        if rows == 0 {
            return;
        }
        self.dense_idx = vec![NO_DENSE; self.n_sources()];
        self.dense_words = vec![0u64; rows as usize * wpr];
        let mut next = 0u32;
        for s in 0..self.n_sources() {
            let (lo, hi) = self.run_bounds(s);
            if !qualifies(hi - lo) {
                continue;
            }
            self.dense_idx[s] = next;
            let row = &mut self.dense_words[next as usize * wpr..][..wpr];
            for &t in &self.targets[lo..hi] {
                row[(t >> 6) as usize] |= 1 << (t & 63);
            }
            next += 1;
        }
    }

    #[inline]
    fn run(&self, s: u32) -> AdjRun<'_> {
        let (lo, hi) = self.run_bounds(s as usize);
        let dense = match self.dense_idx.get(s as usize) {
            Some(&ix) if ix != NO_DENSE => {
                Some(&self.dense_words[ix as usize * self.words_per_row..][..self.words_per_row])
            }
            _ => None,
        };
        AdjRun { list: &self.targets[lo..hi], dense }
    }

    /// Counting-sort transpose: offsets + targets of the opposite
    /// direction. Because sources are scanned in ascending order, every
    /// transposed run comes out sorted without any comparison sort.
    fn transpose(&self, n_targets: usize) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = vec![0u32; n_targets + 1];
        for &t in &self.targets {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n_targets {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n_targets].to_vec();
        let mut out = vec![0u32; self.targets.len()];
        for s in 0..self.n_sources() {
            let (lo, hi) = self.run_bounds(s);
            for &t in &self.targets[lo..hi] {
                out[cursor[t as usize] as usize] = s as u32;
                cursor[t as usize] += 1;
            }
        }
        (offsets, out)
    }

    fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * 4
            + self.targets.capacity() * 4
            + self.dense_idx.capacity() * 4
            + self.dense_words.capacity() * 8
    }
}

/// A materialized runtime index graph in CSR form.
pub struct Rig {
    /// Sorted candidate arrays per query node; local id = index. The sole
    /// stored representation of `cos(q)` — bitmap views are derived on
    /// demand by [`Rig::cos`].
    ids: Vec<Vec<NodeId>>,
    /// Per query edge: successor CSR, indexed by `from`-side local ids.
    fwd: Vec<CsrDir>,
    /// Per query edge: predecessor CSR (counting-sort transpose of `fwd`).
    bwd: Vec<CsrDir>,
    /// Per query edge: (from, to) query-node indexes.
    edge_nodes: Vec<(usize, usize)>,
    pub stats: RigStats,
}

/// Raw CSR material for one query edge of a caller-assembled [`Rig`]
/// (see [`Rig::from_parts`]). Both directions are explicit because a
/// partitioned RIG's forward and backward blocks are **not** mutual
/// transposes: a sharded engine keeps forward rows for the targets one
/// shard owns and backward rows for the sources it owns.
#[derive(Debug, Default, Clone)]
pub struct RigEdgeParts {
    /// `fwd_offsets[s]..fwd_offsets[s + 1]` delimits source-local `s`'s
    /// run in `fwd_targets`; length must be `|cos(from)| + 1`.
    pub fwd_offsets: Vec<u32>,
    /// Concatenated sorted target-local runs.
    pub fwd_targets: Vec<u32>,
    /// Backward offsets, indexed by target-local id (`|cos(to)| + 1`).
    pub bwd_offsets: Vec<u32>,
    /// Concatenated sorted source-local runs.
    pub bwd_targets: Vec<u32>,
}

impl Rig {
    /// Assembles a RIG from caller-built parts: sorted candidate arrays,
    /// query-edge endpoints and one explicit CSR block pair per query
    /// edge. Dense bitmap rows are derived exactly as in [`build_rig`],
    /// and `stats.node_count` / `stats.edge_count` are recomputed from
    /// the parts. The caller is responsible for Def. 4.1 soundness
    /// (`os ⊆ cos ⊆ ms` sandwiching of both node and edge sets); this
    /// constructor only checks shape.
    pub fn from_parts(
        ids: Vec<Vec<NodeId>>,
        edge_nodes: Vec<(usize, usize)>,
        parts: Vec<RigEdgeParts>,
        stats: RigStats,
    ) -> Rig {
        assert_eq!(parts.len(), edge_nodes.len(), "one CSR block pair per query edge");
        let mut rig = Rig {
            ids,
            fwd: Vec::with_capacity(parts.len()),
            bwd: Vec::with_capacity(parts.len()),
            edge_nodes,
            stats,
        };
        for (eid, p) in parts.into_iter().enumerate() {
            let (from, to) = rig.edge_nodes[eid];
            assert_eq!(p.fwd_offsets.len(), rig.ids[from].len() + 1, "fwd offsets (edge {eid})");
            assert_eq!(p.bwd_offsets.len(), rig.ids[to].len() + 1, "bwd offsets (edge {eid})");
            rig.fwd.push(CsrDir::new(p.fwd_offsets, p.fwd_targets, rig.ids[to].len()));
            rig.bwd.push(CsrDir::new(p.bwd_offsets, p.bwd_targets, rig.ids[from].len()));
        }
        rig.stats.node_count = rig.ids.iter().map(|c| c.len() as u64).sum();
        rig.stats.edge_count = rig.fwd.iter().map(|d| d.targets.len() as u64).sum();
        rig
    }

    /// Candidate occurrence set of query node `q`, materialized as a
    /// bitmap. Diagnostic / test accessor — production paths use the
    /// sorted [`Rig::candidates`] array, so the bitmap is not kept
    /// resident.
    pub fn cos(&self, q: usize) -> Bitset {
        Bitset::from_sorted_dedup(&self.ids[q])
    }

    /// Sorted candidate id array of query node `q`; the index of a node in
    /// this slice is its **local id**.
    #[inline]
    pub fn candidates(&self, q: usize) -> &[NodeId] {
        &self.ids[q]
    }

    /// Rank lookup: the local id of data node `v` within `cos(q)`.
    #[inline]
    pub fn local_of(&self, q: usize, v: NodeId) -> Option<u32> {
        self.ids[q].binary_search(&v).ok().map(|i| i as u32)
    }

    /// Inverse of [`Rig::local_of`].
    #[inline]
    pub fn node_at(&self, q: usize, local: u32) -> NodeId {
        self.ids[q][local as usize]
    }

    /// Successor run of local id `u_local` across query edge `eid`, in the
    /// target side's local-id space.
    #[inline]
    pub fn successors_local(&self, eid: EdgeId, u_local: u32) -> AdjRun<'_> {
        self.fwd[eid as usize].run(u_local)
    }

    /// Predecessor run of local id `v_local` across query edge `eid`, in
    /// the source side's local-id space.
    #[inline]
    pub fn predecessors_local(&self, eid: EdgeId, v_local: u32) -> AdjRun<'_> {
        self.bwd[eid as usize].run(v_local)
    }

    /// Query-node endpoints `(from, to)` of query edge `eid`.
    #[inline]
    pub fn edge_endpoints(&self, eid: EdgeId) -> (usize, usize) {
        self.edge_nodes[eid as usize]
    }

    /// Successors of `u` across query edge `eid`, materialized as a bitmap
    /// of data-node ids (`None` if `u` is not a candidate or has none).
    /// Diagnostic / test accessor — the hot path uses
    /// [`Rig::successors_local`].
    pub fn successors(&self, eid: EdgeId, u: NodeId) -> Option<Bitset> {
        let (p, q) = self.edge_nodes[eid as usize];
        let run = self.fwd[eid as usize].run(self.local_of(p, u)?);
        self.materialize(q, run)
    }

    /// Predecessors of `v` across query edge `eid` (see [`Rig::successors`]).
    pub fn predecessors(&self, eid: EdgeId, v: NodeId) -> Option<Bitset> {
        let (p, q) = self.edge_nodes[eid as usize];
        let run = self.bwd[eid as usize].run(self.local_of(q, v)?);
        self.materialize(p, run)
    }

    fn materialize(&self, side: usize, run: AdjRun<'_>) -> Option<Bitset> {
        if run.is_empty() {
            return None;
        }
        let ids = &self.ids[side];
        let globals: Vec<NodeId> = run.list.iter().map(|&l| ids[l as usize]).collect();
        Some(Bitset::from_sorted_dedup(&globals))
    }

    /// True iff some candidate set is empty — the query answer is empty and
    /// enumeration can be skipped entirely.
    pub fn is_empty(&self) -> bool {
        self.ids.iter().any(|c| c.is_empty())
    }

    /// Number of query nodes this RIG indexes (one candidate array each).
    pub fn num_query_nodes(&self) -> usize {
        self.ids.len()
    }

    /// Number of query edges this RIG indexes (one CSR pair each).
    pub fn num_query_edges(&self) -> usize {
        self.fwd.len()
    }

    /// Candidate set cardinality of query node `q` (the statistic the JO
    /// search order greedily minimizes, §5.2).
    pub fn cos_len(&self, q: rig_query::QNode) -> u64 {
        self.ids[q as usize].len() as u64
    }

    /// Total RIG edge cardinality `|cos(e)|` across query edge `eid` (the
    /// `|R_j|` statistic of Thm. 5.1 and the BJ cost model). O(1) on the
    /// CSR layout.
    pub fn edge_cardinality(&self, eid: EdgeId) -> u64 {
        self.fwd[eid as usize].targets.len() as u64
    }

    /// RIG size / data graph size, as reported in Fig. 13(a).
    pub fn size_ratio(&self, g: &rig_graph::DataGraph) -> f64 {
        self.stats.size() as f64 / (g.num_nodes() + g.num_edges()) as f64
    }

    /// Approximate heap footprint (bytes), for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        let ids: usize = self.ids.iter().map(|v| v.capacity() * 4).sum();
        let adj: usize =
            self.fwd.iter().chain(self.bwd.iter()).map(|d| d.heap_bytes()).sum::<usize>();
        ids + adj + self.edge_nodes.capacity() * std::mem::size_of::<(usize, usize)>()
    }
}

/// Builds a RIG for `ctx.query` on `ctx.graph` (Alg. 4). `bfl` supplies the
/// condensation + interval labels used by reachability expansion; it should
/// be the same index `ctx.reach` wraps (the GM facade guarantees this).
pub fn build_rig(ctx: &SimContext<'_>, bfl: &BflIndex, opts: &RigOptions) -> Rig {
    // ---- node selection phase ----
    let select_start = Instant::now();
    let mut sim_passes = 0;
    let mut pruned = 0;
    let cos: Vec<Bitset> = match opts.select {
        SelectMode::MatchSets => ctx.match_sets(),
        SelectMode::PrefilterOnly => {
            let ms_total = match_set_total(ctx);
            let pf = prefilter(ctx);
            pruned = ms_total - total_len(&pf);
            pf
        }
        SelectMode::SimOnly => {
            let r = double_simulation(ctx, &opts.sim);
            sim_passes = r.passes;
            pruned = r.pruned;
            r.fb
        }
        SelectMode::PrefilterThenSim => {
            // The pre-filter is a cheap first pass; the simulation fixpoint
            // then *starts* from its output (rather than re-deriving its
            // prunes from the raw match sets), which preserves FB because
            // the prefilter output still sandwiches it.
            let ms_total = match_set_total(ctx);
            let pf = prefilter(ctx);
            let pf_pruned = ms_total - total_len(&pf);
            let r = double_simulation_seeded(ctx, &opts.sim, pf);
            sim_passes = r.passes;
            pruned = pf_pruned + r.pruned;
            r.fb
        }
    };
    let select_time = select_start.elapsed();
    let stats = RigStats { select_time, sim_passes, pruned, ..Default::default() };
    finish_rig(ctx, bfl, opts, cos, stats)
}

/// Builds a RIG whose candidate sets are supplied by the caller (each must
/// sandwich `os(q) ⊆ cos[q] ⊆ ms(q)`), skipping the selection phase. Used
/// by engines with their own filtering front end (e.g. the RapidMatch
/// analogue's tree-restricted filter).
pub fn build_rig_from_candidates(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    cos: Vec<Bitset>,
) -> Rig {
    assert_eq!(cos.len(), ctx.query.num_nodes(), "one candidate set per query node");
    finish_rig(ctx, bfl, opts, cos, RigStats::default())
}

fn total_len(sets: &[Bitset]) -> u64 {
    sets.iter().map(|s| s.len()).sum()
}

fn match_set_total(ctx: &SimContext<'_>) -> u64 {
    ctx.query
        .labels()
        .iter()
        .map(|&l| {
            if (l as usize) < ctx.graph.num_labels() {
                ctx.graph.label_bitset(l).len()
            } else {
                0
            }
        })
        .sum()
}

/// Shared tail of RIG construction: the node expansion phase (§4.5) on a
/// fixed candidate selection.
fn finish_rig(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    cos: Vec<Bitset>,
    stats: RigStats,
) -> Rig {
    let nq = ctx.query.num_nodes();
    let ne = ctx.query.num_edges();
    let edge_nodes: Vec<(usize, usize)> = (0..ne)
        .map(|eid| {
            let e = ctx.query.edge(eid as EdgeId);
            (e.from as usize, e.to as usize)
        })
        .collect();

    // Empty candidate set => empty answer; skip expansion (§4.3).
    if cos.iter().any(|c| c.is_empty()) {
        return empty_shaped(nq, ne, edge_nodes, stats);
    }

    // The selection bitsets are decoded into the sorted candidate arrays
    // (the rank dictionaries) and dropped — the RIG keeps one candidate
    // representation, not two.
    let ids: Vec<Vec<NodeId>> = cos.iter().map(|c| c.to_vec()).collect();
    drop(cos);
    let mut rig =
        Rig { ids, fwd: Vec::with_capacity(ne), bwd: Vec::with_capacity(ne), edge_nodes, stats };

    // ---- node expansion phase ----
    let expand_start = Instant::now();
    match expand_all(ctx, bfl, opts, &rig.ids, &rig.edge_nodes) {
        Some(blocks) => {
            for (fwd, bwd) in blocks {
                rig.fwd.push(fwd);
                rig.bwd.push(bwd);
            }
        }
        None => {
            // Deadline expired mid-expansion. A partial RIG is unusable
            // (enumeration needs every edge block), so hand back the empty
            // shell flagged as timed out.
            let mut stats = rig.stats;
            stats.expand_time = expand_start.elapsed();
            stats.timed_out = true;
            return empty_shaped(nq, ne, rig.edge_nodes, stats);
        }
    }
    rig.stats.expand_time = expand_start.elapsed();
    rig.stats.node_count = rig.ids.iter().map(|c| c.len() as u64).sum();
    rig.stats.edge_count = rig.fwd.iter().map(|d| d.targets.len() as u64).sum();
    rig
}

/// A RIG with the right per-node/per-edge shape but no candidates: what
/// both the empty-answer short-circuit and the deadline abort return.
fn empty_shaped(nq: usize, ne: usize, edge_nodes: Vec<(usize, usize)>, stats: RigStats) -> Rig {
    let mut rig = Rig {
        ids: vec![Vec::new(); nq],
        fwd: Vec::with_capacity(ne),
        bwd: Vec::with_capacity(ne),
        edge_nodes,
        stats,
    };
    for _ in 0..ne {
        rig.fwd.push(CsrDir::new(vec![0], Vec::new(), 0));
        rig.bwd.push(CsrDir::new(vec![0], Vec::new(), 0));
    }
    rig.stats.node_count = 0;
    rig.stats.edge_count = 0;
    rig
}

/// Periodic deadline probe for the per-source expansion loops: reads the
/// clock once every 256 probes (and on the very first, so an
/// already-expired deadline aborts immediately).
struct DeadlineProbe {
    at: Option<Instant>,
    tick: u32,
    expired: bool,
}

impl DeadlineProbe {
    fn new(at: Option<Instant>) -> Self {
        DeadlineProbe { at, tick: 0, expired: false }
    }

    #[inline]
    fn expired(&mut self) -> bool {
        if self.expired {
            return true;
        }
        let Some(at) = self.at else { return false };
        self.tick = self.tick.wrapping_add(1);
        if self.tick % 256 == 1 && Instant::now() >= at {
            self.expired = true;
        }
        self.expired
    }
}

/// Expands every query edge into its (forward, backward) CSR block pair,
/// in edge-id order. With `opts.build_threads > 1`, scoped worker threads
/// claim edges off an atomic cursor and build the blocks concurrently —
/// each block only reads the shared context (graph, BFL, candidate
/// arrays), so the output is identical to the sequential build for every
/// thread count. Returns `None` when `opts.deadline` expired mid-build.
fn expand_all(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    ids: &[Vec<NodeId>],
    edge_nodes: &[(usize, usize)],
) -> Option<Vec<(CsrDir, CsrDir)>> {
    let ne = edge_nodes.len();
    let build_one = |eid: usize| {
        let (p, q) = edge_nodes[eid];
        let (offsets, targets) = expand_edge(ctx, bfl, opts, ids, eid as EdgeId, p, q)?;
        let fwd = CsrDir::new(offsets, targets, ids[q].len());
        let (boff, btgt) = fwd.transpose(ids[q].len());
        let bwd = CsrDir::new(boff, btgt, ids[p].len());
        Some((fwd, bwd))
    };
    let threads = opts.build_threads.clamp(1, ne.max(1));
    if threads <= 1 || ne <= 1 {
        return (0..ne).map(build_one).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let timed_out = std::sync::atomic::AtomicBool::new(false);
    let per_worker: Vec<Vec<(usize, (CsrDir, CsrDir))>> = std::thread::scope(|scope| {
        let (next, build_one, timed_out) = (&next, &build_one, &timed_out);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut built = Vec::new();
                    loop {
                        if timed_out.load(std::sync::atomic::Ordering::Relaxed) {
                            return built;
                        }
                        let eid = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if eid >= ne {
                            return built;
                        }
                        match build_one(eid) {
                            Some(block) => built.push((eid, block)),
                            None => {
                                timed_out.store(true, std::sync::atomic::Ordering::Relaxed);
                                return built;
                            }
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rig expansion worker panicked")).collect()
    });
    if timed_out.load(std::sync::atomic::Ordering::Relaxed) {
        return None;
    }
    let mut slots: Vec<Option<(CsrDir, CsrDir)>> = (0..ne).map(|_| None).collect();
    for (eid, block) in per_worker.into_iter().flatten() {
        slots[eid] = Some(block);
    }
    Some(slots.into_iter().map(|s| s.expect("every query edge expanded")).collect())
}

/// Expands one query edge into forward CSR runs (local target ids).
///
/// On a **dirty snapshot** (uncompacted delta) reachability edges always
/// take the overlay-DFS path: the BFL condensation, interval labels and
/// per-SCC memoization all describe the base segment only, so both the
/// early-termination cut and the memo would be unsound — the pruned DFS
/// reads adjacency through the overlay and needs none of them. Compaction
/// rebuilds BFL and restores the indexed path.
fn expand_edge(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    ids: &[Vec<NodeId>],
    eid: EdgeId,
    p: usize,
    q: usize,
) -> Option<(Vec<u32>, Vec<u32>)> {
    let dl = opts.deadline;
    match ctx.query.edge(eid).kind {
        EdgeKind::Direct => expand_direct(ctx, ids, p, q, dl),
        EdgeKind::Reachability if ctx.graph.is_dirty() => expand_reach_dfs(ctx, ids, p, q, dl),
        EdgeKind::Reachability => match opts.reach_expand {
            ReachExpandMode::PairwiseBfl => expand_reach_pairwise(ctx, bfl, opts, ids, p, q),
            ReachExpandMode::PrunedDfs => expand_reach_dfs(ctx, ids, p, q, dl),
        },
    }
}

/// Appends the next CSR offset, refusing to wrap: a single query edge is
/// limited to `u32::MAX` RIG adjacency entries (the data graph uses u64
/// offsets, so a pathological edge could exceed that — fail loudly rather
/// than corrupt run bounds).
#[inline]
fn push_offset(offsets: &mut Vec<u32>, targets_len: usize) {
    assert!(
        u32::try_from(targets_len).is_ok(),
        "query-edge adjacency exceeds u32::MAX entries ({targets_len}); CSR offsets would wrap"
    );
    offsets.push(targets_len as u32);
}

/// Direct-edge expansion: `adjf(u) ∩ cos(q)` per source, written straight
/// into the CSR arena as local ids (§4.5) — no per-source bitmaps, no
/// hash maps.
fn expand_direct(
    ctx: &SimContext<'_>,
    ids: &[Vec<NodeId>],
    p: usize,
    q: usize,
    deadline: Option<Instant>,
) -> Option<(Vec<u32>, Vec<u32>)> {
    let (src, tgt) = (&ids[p], &ids[q]);
    let mut probe = DeadlineProbe::new(deadline);
    let mut offsets = Vec::with_capacity(src.len() + 1);
    offsets.push(0u32);
    let mut targets = Vec::new();
    for &u in src {
        if probe.expired() {
            return None;
        }
        intersect_to_locals(ctx.graph.out_neighbors(u), tgt, &mut targets);
        push_offset(&mut offsets, targets.len());
    }
    Some((offsets, targets))
}

/// Intersects two sorted id lists, emitting the *positions in `tgt`* (local
/// ids) of the common values. Gallops when the sizes are lopsided.
fn intersect_to_locals(nbrs: &[NodeId], tgt: &[NodeId], out: &mut Vec<u32>) {
    if nbrs.is_empty() || tgt.is_empty() {
        return;
    }
    if nbrs.len() * 16 < tgt.len() {
        for &v in nbrs {
            if let Ok(j) = tgt.binary_search(&v) {
                out.push(j as u32);
            }
        }
    } else if tgt.len() * 16 < nbrs.len() {
        for (j, t) in tgt.iter().enumerate() {
            if nbrs.binary_search(t).is_ok() {
                out.push(j as u32);
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < nbrs.len() && j < tgt.len() {
            match nbrs[i].cmp(&tgt[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(j as u32);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Reachability expansion with per-pair BFL probes; candidates of `q` are
/// visited in ascending interval `begin` so that scanning can stop at the
/// first candidate with `begin > u.end` (early expansion termination).
///
/// The target list, its interval sort and the per-target
/// component/interval lookups are all hoisted out of the per-source loop,
/// and whole runs are memoized per source SCC: every source in one
/// component reaches exactly the same candidates (self-candidacy included,
/// because a trivial component's sole member is its only possible source).
fn expand_reach_pairwise(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    ids: &[Vec<NodeId>],
    p: usize,
    q: usize,
) -> Option<(Vec<u32>, Vec<u32>)> {
    let cond = bfl.condensation();
    let intervals = bfl.intervals();
    let (src, tgt) = (&ids[p], &ids[q]);
    let mut probe = DeadlineProbe::new(opts.deadline);
    // (begin, target node, local id), cached once per edge; sorted by
    // interval begin only when the early-termination cut needs that order.
    let mut tinfo: Vec<(u32, NodeId, u32)> = tgt
        .iter()
        .enumerate()
        .map(|(j, &v)| (intervals.begin[cond.component(v) as usize], v, j as u32))
        .collect();
    if opts.early_termination {
        tinfo.sort_unstable();
    }
    let mut offsets = Vec::with_capacity(src.len() + 1);
    offsets.push(0u32);
    let mut targets = Vec::new();
    let mut memo: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut run: Vec<u32> = Vec::new();
    for &u in src {
        if probe.expired() {
            return None;
        }
        let cu = cond.component(u);
        let nontrivial = cond.nontrivial[cu as usize];
        // Only nontrivial SCCs can host more than one source, so only they
        // are worth memoizing (a trivial component's run could never be
        // requested again).
        if nontrivial {
            if let Some(cached) = memo.get(&cu) {
                targets.extend_from_slice(cached);
                push_offset(&mut offsets, targets.len());
                continue;
            }
        }
        run.clear();
        let u_end = intervals.end[cu as usize];
        for &(begin, v, j) in &tinfo {
            if opts.early_termination && begin > u_end {
                break; // all later candidates are unreachable from u
            }
            if (u != v || nontrivial) && ctx.reach.reaches(u, v) {
                run.push(j);
            }
        }
        if opts.early_termination {
            run.sort_unstable(); // begin order -> local-id order
        }
        targets.extend_from_slice(&run);
        push_offset(&mut offsets, targets.len());
        if nontrivial {
            memo.insert(cu, run.clone());
        }
    }
    Some((offsets, targets))
}

/// Reachability expansion by one pruned DFS per source node.
fn expand_reach_dfs(
    ctx: &SimContext<'_>,
    ids: &[Vec<NodeId>],
    p: usize,
    q: usize,
    deadline: Option<Instant>,
) -> Option<(Vec<u32>, Vec<u32>)> {
    let g = ctx.graph;
    let (src, tgt) = (&ids[p], &ids[q]);
    // One DFS can walk the whole graph, so the probe ticks per pop, not
    // per source.
    let mut probe = DeadlineProbe::new(deadline);
    let mut stamp = vec![u32::MAX; g.num_nodes()];
    let mut offsets = Vec::with_capacity(src.len() + 1);
    offsets.push(0u32);
    let mut targets = Vec::new();
    let mut run: Vec<u32> = Vec::new();
    for (epoch, &u) in src.iter().enumerate() {
        let epoch = epoch as u32;
        run.clear();
        let mut stack: Vec<NodeId> = g.out_neighbors(u).to_vec();
        while let Some(x) = stack.pop() {
            if probe.expired() {
                return None;
            }
            if stamp[x as usize] == epoch {
                continue;
            }
            stamp[x as usize] = epoch;
            if let Ok(j) = tgt.binary_search(&x) {
                run.push(j as u32);
            }
            stack.extend_from_slice(g.out_neighbors(x));
        }
        run.sort_unstable();
        targets.extend_from_slice(&run);
        push_offset(&mut offsets, targets.len());
    }
    Some((offsets, targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder};
    use rig_query::{fig2_query, EdgeKind, PatternQuery};

    /// Fig. 2(b) reconstruction (same node ids as rig-sim's tests).
    fn fig2_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    fn build(g: &DataGraph, q: &PatternQuery, opts: &RigOptions) -> Rig {
        let bfl = BflIndex::new(g);
        let ctx = SimContext::new(g, q, &bfl);
        build_rig(&ctx, &bfl, opts)
    }

    /// The refined RIG on the running example: candidate sets equal the FB
    /// sets; the reachability edge (B,C) keeps one redundant edge
    /// (b2 -> c0), the analogue of the paper's red dashed edge in Fig. 2(e).
    #[test]
    fn fig2_refined_rig() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = build(&g, &q, &RigOptions::exact());
        assert_eq!(rig.cos(0).to_vec(), vec![1, 2]); // {a1, a2}
        assert_eq!(rig.cos(1).to_vec(), vec![3, 5]); // {b0, b2}
        assert_eq!(rig.cos(2).to_vec(), vec![7, 9]); // {c0, c2}
                                                     // edge (A,B) direct
        assert_eq!(rig.successors(0, 1).unwrap().to_vec(), vec![3]);
        assert_eq!(rig.successors(0, 2).unwrap().to_vec(), vec![5]);
        // edge (A,C) direct
        assert_eq!(rig.successors(1, 1).unwrap().to_vec(), vec![7]);
        assert_eq!(rig.successors(1, 2).unwrap().to_vec(), vec![9]);
        // edge (B,C) reachability: b0 => {c0}; b2 => {c0 (redundant!), c2}
        assert_eq!(rig.successors(2, 3).unwrap().to_vec(), vec![7]);
        assert_eq!(rig.successors(2, 5).unwrap().to_vec(), vec![7, 9]);
        // backward adjacency mirrors forward
        assert_eq!(rig.predecessors(2, 7).unwrap().to_vec(), vec![3, 5]);
        assert_eq!(rig.predecessors(2, 9).unwrap().to_vec(), vec![5]);
        // stats
        assert_eq!(rig.stats.node_count, 6);
        assert_eq!(rig.stats.edge_count, 7);
        assert!(!rig.is_empty());
        assert!(rig.size_ratio(&g) > 0.0);
    }

    /// The CSR local-id dictionary round-trips and the local runs mirror
    /// the materialized accessors.
    #[test]
    fn local_id_dictionary_and_runs() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = build(&g, &q, &RigOptions::exact());
        assert_eq!(rig.candidates(1), &[3, 5]);
        assert_eq!(rig.local_of(1, 5), Some(1));
        assert_eq!(rig.local_of(1, 4), None);
        assert_eq!(rig.node_at(1, 0), 3);
        // edge (B,C): local run of b2 (local 1) = {c0, c2} = locals {0, 1}
        let run = rig.successors_local(2, 1);
        assert_eq!(run.list, &[0, 1]);
        assert!(run.contains(0) && run.contains(1) && !run.contains(2));
        let mut cursor = 0;
        assert!(run.contains_from(&mut cursor, 0));
        assert!(run.contains_from(&mut cursor, 1));
        assert!(!run.contains_from(&mut cursor, 7));
        // backward run of c0 (local 0) = {b0, b2} = locals {0, 1}
        assert_eq!(rig.predecessors_local(2, 0).list, &[0, 1]);
        assert_eq!(rig.edge_endpoints(2), (1, 2));
        assert_eq!(rig.edge_cardinality(2), 3);
        assert!(rig.heap_bytes() > 0);
    }

    /// All (select-mode, expand-mode, early-termination) combinations agree
    /// on edges whenever their candidate sets agree; and every variant's
    /// RIG contains the refined RIG (supersets shrink monotonically).
    #[test]
    fn variants_are_supersets_of_refined_rig() {
        let g = fig2_graph();
        let q = fig2_query();
        let refined = build(&g, &q, &RigOptions::exact());
        for select in [SelectMode::MatchSets, SelectMode::PrefilterOnly, SelectMode::SimOnly] {
            let opts = RigOptions { select, ..RigOptions::exact() };
            let r = build(&g, &q, &opts);
            for i in 0..q.num_nodes() {
                assert!(
                    refined.cos(i).is_subset(&r.cos(i)),
                    "{select:?}: refined cos({i}) ⊄ variant"
                );
            }
            assert!(r.stats.size() >= refined.stats.size(), "{select:?}");
        }
    }

    #[test]
    fn expand_modes_agree() {
        let g = fig2_graph();
        let q = fig2_query();
        for early in [false, true] {
            let a = build(
                &g,
                &q,
                &RigOptions {
                    reach_expand: ReachExpandMode::PairwiseBfl,
                    early_termination: early,
                    ..RigOptions::exact()
                },
            );
            let b = build(
                &g,
                &q,
                &RigOptions { reach_expand: ReachExpandMode::PrunedDfs, ..RigOptions::exact() },
            );
            assert_eq!(a.stats.edge_count, b.stats.edge_count, "early={early}");
            for u in a.cos(1).iter() {
                assert_eq!(
                    a.successors(2, u).map(|s| s.to_vec()),
                    b.successors(2, u).map(|s| s.to_vec()),
                    "early={early} u={u}"
                );
            }
        }
    }

    #[test]
    fn empty_rig_early_exit() {
        // no c-labeled node reachable: answer empty
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(0);
        let b0 = b.add_node(1);
        b.add_node(2); // isolated c
        b.add_edge(a0, b0);
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        let rig = build(&g, &q, &RigOptions::exact());
        assert!(rig.is_empty());
        assert_eq!(rig.stats.node_count, 0);
        assert_eq!(rig.stats.edge_count, 0);
    }

    #[test]
    fn match_rig_is_largest() {
        let g = fig2_graph();
        let q = fig2_query();
        let m = build(&g, &q, &RigOptions { select: SelectMode::MatchSets, ..RigOptions::exact() });
        // match sets: 3 a's + 4 b's + 3 c's
        assert_eq!(m.stats.node_count, 10);
        // (A,B) matches: a1->b0, a2->b2, a0->b1 = 3 edges
        assert_eq!(m.edge_cardinality(0), 3);
    }

    #[test]
    fn paper_default_three_pass_cap_still_sound() {
        let g = fig2_graph();
        let q = fig2_query();
        let capped = build(&g, &q, &RigOptions::default());
        let exact = build(&g, &q, &RigOptions::exact());
        for i in 0..q.num_nodes() {
            assert!(exact.cos(i).is_subset(&capped.cos(i)));
        }
    }

    /// `build_rig_from_candidates` on the FB sets equals the refined RIG.
    #[test]
    fn candidates_entry_point_matches_full_build() {
        let g = fig2_graph();
        let q = fig2_query();
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let full = build_rig(&ctx, &bfl, &RigOptions::exact());
        let fb = rig_sim::double_simulation(&ctx, &SimOptions::exact()).fb;
        let seeded = build_rig_from_candidates(&ctx, &bfl, &RigOptions::exact(), fb);
        for i in 0..q.num_nodes() {
            assert_eq!(full.cos(i).to_vec(), seeded.cos(i).to_vec());
        }
        assert_eq!(full.stats.edge_count, seeded.stats.edge_count);
    }

    /// Parallel expansion is a pure scheduling change: the RIG it builds
    /// is identical to the sequential one for every thread count.
    #[test]
    fn parallel_build_matches_sequential() {
        let g = fig2_graph();
        let q = fig2_query();
        let seq = build(&g, &q, &RigOptions::exact());
        for threads in [2usize, 3, 8] {
            let par = build(&g, &q, &RigOptions::exact().with_build_threads(threads));
            for i in 0..q.num_nodes() {
                assert_eq!(seq.candidates(i), par.candidates(i), "threads={threads} cos({i})");
            }
            for eid in 0..q.num_edges() as EdgeId {
                assert_eq!(seq.edge_cardinality(eid), par.edge_cardinality(eid), "e{eid}");
                let (p, t) = seq.edge_endpoints(eid);
                for u in 0..seq.candidates(p).len() as u32 {
                    assert_eq!(
                        seq.successors_local(eid, u).list,
                        par.successors_local(eid, u).list,
                        "threads={threads} fwd(e{eid}, {u})"
                    );
                }
                for v in 0..seq.candidates(t).len() as u32 {
                    assert_eq!(
                        seq.predecessors_local(eid, v).list,
                        par.predecessors_local(eid, v).list,
                        "threads={threads} bwd(e{eid}, {v})"
                    );
                }
            }
        }
    }

    /// Dense bitmap rows kick in on long runs and agree with the sparse
    /// list.
    #[test]
    fn dense_rows_agree_with_sparse_runs() {
        // one a-node pointing at many b-nodes
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(0);
        let mut bs = Vec::new();
        for _ in 0..500 {
            bs.push(b.add_node(1));
        }
        for &x in &bs {
            b.add_edge(a0, x);
        }
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let rig = build(&g, &q, &RigOptions::exact());
        let run = rig.successors_local(0, 0);
        assert_eq!(run.len(), 500);
        assert!(run.dense.is_some(), "long run must carry a dense row");
        for l in 0..500u32 {
            assert!(run.contains(l));
            let mut cur = 0;
            assert!(run.contains_from(&mut cur, l));
        }
        assert!(!run.contains(500));
    }
}
