//! The pre-CSR runtime index graph, kept verbatim as a **reference
//! implementation**: per-edge adjacency as hash maps of bitmaps, mirrored
//! in both directions, with the selection phase running the full
//! simulation from the raw match sets and intersecting with the pre-filter
//! afterwards.
//!
//! It exists for two jobs only:
//!
//! * **differential testing** — `csr_vs_reference` proptests assert the CSR
//!   [`crate::Rig`] produces identical candidate sets, adjacency and MJoin
//!   counts;
//! * **baseline benchmarking** — the `--json` experiment harnesses and the
//!   criterion suite measure the CSR layout against this implementation in
//!   the same process, which is what `BENCH_mjoin.json` / `BENCH_rig.json`
//!   record.
//!
//! Do not use it in new code paths; it is strictly slower and larger.

use std::time::Instant;

use rig_bitset::Bitset;
use rig_graph::{FxHashMap, NodeId};
use rig_query::{EdgeId, EdgeKind};
use rig_reach::BflIndex;
use rig_sim::{double_simulation, prefilter, SimContext};

use crate::{ReachExpandMode, RigOptions, RigStats, SelectMode};

/// A materialized runtime index graph in the pre-CSR layout.
pub struct RefRig {
    /// Candidate occurrence set per query node.
    pub cos: Vec<Bitset>,
    /// Per query edge: successor adjacency `u ∈ cos(from) -> {v ∈ cos(to)}`.
    fwd: Vec<FxHashMap<NodeId, Bitset>>,
    /// Per query edge: predecessor adjacency `v ∈ cos(to) -> {u ∈ cos(from)}`.
    bwd: Vec<FxHashMap<NodeId, Bitset>>,
    pub stats: RigStats,
}

impl RefRig {
    /// Successors of `u` across query edge `eid` (`None` if none).
    pub fn successors(&self, eid: EdgeId, u: NodeId) -> Option<&Bitset> {
        self.fwd[eid as usize].get(&u)
    }

    /// Predecessors of `v` across query edge `eid`.
    pub fn predecessors(&self, eid: EdgeId, v: NodeId) -> Option<&Bitset> {
        self.bwd[eid as usize].get(&v)
    }

    /// True iff some candidate set is empty.
    pub fn is_empty(&self) -> bool {
        self.cos.iter().any(|c| c.is_empty())
    }

    /// Candidate set cardinality of query node `q`.
    pub fn cos_len(&self, q: rig_query::QNode) -> u64 {
        self.cos[q as usize].len()
    }

    /// Total RIG edge cardinality `|cos(e)|` across query edge `eid`.
    pub fn edge_cardinality(&self, eid: EdgeId) -> u64 {
        self.fwd[eid as usize].values().map(|b| b.len()).sum()
    }

    /// Approximate heap footprint (bytes) of the hashmap layout.
    pub fn heap_bytes(&self) -> usize {
        let cos: usize = self.cos.iter().map(|b| b.heap_bytes()).sum();
        let adj: usize = self
            .fwd
            .iter()
            .chain(self.bwd.iter())
            .flat_map(|m| m.values())
            .map(|b| b.heap_bytes() + std::mem::size_of::<(NodeId, Bitset)>())
            .sum();
        cos + adj
    }
}

/// Builds a [`RefRig`] with the pre-CSR pipeline (Alg. 4, original code).
pub fn build_reference_rig(ctx: &SimContext<'_>, bfl: &BflIndex, opts: &RigOptions) -> RefRig {
    // ---- node selection phase ----
    let select_start = Instant::now();
    let mut sim_passes = 0;
    let mut pruned = 0;
    let cos: Vec<Bitset> = match opts.select {
        SelectMode::MatchSets => ctx.match_sets(),
        SelectMode::PrefilterOnly => prefilter(ctx),
        SelectMode::SimOnly => {
            let r = double_simulation(ctx, &opts.sim);
            sim_passes = r.passes;
            pruned = r.pruned;
            r.fb
        }
        SelectMode::PrefilterThenSim => {
            // Original behavior: run the simulation from the raw match sets
            // and intersect with the pre-filter output afterwards (the
            // prefilter's pruning is re-derived rather than seeded).
            let pf = prefilter(ctx);
            let mut r = double_simulation(ctx, &opts.sim);
            for (acc, s) in r.fb.iter_mut().zip(pf.iter()) {
                acc.and_assign(s);
            }
            sim_passes = r.passes;
            pruned = r.pruned;
            r.fb
        }
    };
    let select_time = select_start.elapsed();

    let ne = ctx.query.num_edges();
    let mut rig = RefRig {
        cos,
        fwd: vec![FxHashMap::default(); ne],
        bwd: vec![FxHashMap::default(); ne],
        stats: RigStats { select_time, sim_passes, pruned, ..Default::default() },
    };

    // Empty candidate set => empty answer; skip expansion (§4.3).
    if rig.is_empty() {
        for c in rig.cos.iter_mut() {
            c.clear();
        }
        rig.stats.node_count = 0;
        return rig;
    }

    // ---- node expansion phase ----
    let expand_start = Instant::now();
    for eid in 0..ne as EdgeId {
        expand_edge(ctx, bfl, opts, &mut rig, eid);
    }
    rig.stats.expand_time = expand_start.elapsed();
    rig.stats.node_count = rig.cos.iter().map(|c| c.len()).sum();
    rig.stats.edge_count = rig.fwd.iter().flat_map(|m| m.values()).map(|b| b.len()).sum();
    rig
}

fn expand_edge(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    rig: &mut RefRig,
    eid: EdgeId,
) {
    let e = ctx.query.edge(eid);
    let (p, q) = (e.from as usize, e.to as usize);
    match e.kind {
        EdgeKind::Direct => {
            // adjf(v_p) ∩ cos(q) in one bitmap AND per source (§4.5).
            let mut fwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
            let mut bwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
            for u in rig.cos[p].iter() {
                let succ = Bitset::from_sorted_dedup(ctx.graph.out_neighbors(u)).and(&rig.cos[q]);
                if succ.is_empty() {
                    continue;
                }
                for v in succ.iter() {
                    bwd.entry(v).or_default().insert(u);
                }
                fwd.insert(u, succ);
            }
            rig.fwd[eid as usize] = fwd;
            rig.bwd[eid as usize] = bwd;
        }
        EdgeKind::Reachability => match opts.reach_expand {
            ReachExpandMode::PairwiseBfl => expand_reach_pairwise(ctx, bfl, opts, rig, eid, p, q),
            ReachExpandMode::PrunedDfs => expand_reach_dfs(ctx, rig, eid, p, q),
        },
    }
}

/// Reachability expansion with per-pair BFL probes (original per-pair
/// component/interval lookups, no memoization).
fn expand_reach_pairwise(
    ctx: &SimContext<'_>,
    bfl: &BflIndex,
    opts: &RigOptions,
    rig: &mut RefRig,
    eid: EdgeId,
    p: usize,
    q: usize,
) {
    let cond = bfl.condensation();
    let intervals = bfl.intervals();
    // cos(q) sorted by interval begin
    let mut targets: Vec<NodeId> = rig.cos[q].iter().collect();
    if opts.early_termination {
        intervals.sort_nodes_by_begin(cond, &mut targets);
    }
    let mut fwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    let mut bwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    for u in rig.cos[p].iter() {
        let cu = cond.component(u);
        let u_end = intervals.end[cu as usize];
        let mut succ = Bitset::new();
        for &v in &targets {
            if opts.early_termination {
                let cv = cond.component(v);
                if intervals.begin[cv as usize] > u_end {
                    break; // all later candidates are unreachable from u
                }
            }
            if (u != v || cond.nontrivial[cu as usize]) && ctx.reach.reaches(u, v) {
                succ.insert(v);
            }
        }
        if succ.is_empty() {
            continue;
        }
        for v in succ.iter() {
            bwd.entry(v).or_default().insert(u);
        }
        fwd.insert(u, succ);
    }
    rig.fwd[eid as usize] = fwd;
    rig.bwd[eid as usize] = bwd;
}

/// Reachability expansion by one pruned DFS per source node.
fn expand_reach_dfs(ctx: &SimContext<'_>, rig: &mut RefRig, eid: EdgeId, p: usize, q: usize) {
    let g = ctx.graph;
    let n = g.num_nodes();
    let mut stamp = vec![u32::MAX; n];
    let mut fwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    let mut bwd: FxHashMap<NodeId, Bitset> = FxHashMap::default();
    for (epoch, u) in rig.cos[p].iter().enumerate() {
        let epoch = epoch as u32;
        let mut succ = Bitset::new();
        let mut stack: Vec<NodeId> = g.out_neighbors(u).to_vec();
        while let Some(x) = stack.pop() {
            if stamp[x as usize] == epoch {
                continue;
            }
            stamp[x as usize] = epoch;
            if rig.cos[q].contains(x) {
                succ.insert(x);
            }
            stack.extend_from_slice(g.out_neighbors(x));
        }
        if succ.is_empty() {
            continue;
        }
        for v in succ.iter() {
            bwd.entry(v).or_default().insert(u);
        }
        fwd.insert(u, succ);
    }
    rig.fwd[eid as usize] = fwd;
    rig.bwd[eid as usize] = bwd;
}
