//! Property tests: BFL and the materialized transitive closure must agree
//! with each other (and hence with ground truth) on arbitrary graphs,
//! including dense, cyclic and disconnected ones.

use proptest::prelude::*;
use rig_graph::{GraphBuilder, NodeId};
use rig_reach::{ancestors_of_set, descendants_of_set, BflIndex, Reachability, TransitiveClosure};

fn graph_strategy() -> impl Strategy<Value = rig_graph::DataGraph> {
    (2usize..40, prop::collection::vec((0u32..40, 0u32..40), 0..120)).prop_map(|(n, edges)| {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            b.add_edge(u, v); // self-loops allowed: cyclic SCC of size 1
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bfl_equals_transitive_closure(g in graph_strategy()) {
        let bfl = BflIndex::new(&g);
        let tc = TransitiveClosure::new(&g);
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(
                    bfl.reaches(u, v),
                    tc.reaches(u, v),
                    "u={} v={}", u, v
                );
            }
        }
    }

    #[test]
    fn set_reachability_equals_pointwise(g in graph_strategy(), seeds in prop::collection::vec(0u32..40, 1..5)) {
        let tc = TransitiveClosure::new(&g);
        let sources: rig_bitset::Bitset =
            seeds.iter().map(|&s| s % g.num_nodes() as u32).collect();
        let desc = descendants_of_set(&g, &sources);
        let anc = ancestors_of_set(&g, &sources);
        for v in 0..g.num_nodes() as NodeId {
            let expect_desc = sources.iter().any(|s| tc.reaches(s, v));
            let expect_anc = sources.iter().any(|s| tc.reaches(v, s));
            prop_assert_eq!(desc.contains(v), expect_desc, "desc v={}", v);
            prop_assert_eq!(anc.contains(v), expect_anc, "anc v={}", v);
        }
    }

    #[test]
    fn descendant_bitmaps_consistent(g in graph_strategy()) {
        let tc = TransitiveClosure::new(&g);
        for u in 0..g.num_nodes() as NodeId {
            let d = tc.descendants_of(u);
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(d.contains(v), tc.reaches(u, v));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests against the remaining oracles: random *DAGs* (the
// strategy above freely generates cycles), and the DFS-interval index on the
// SCC condensation, whose negative cut and positive hit must both be sound
// with respect to the materialized transitive closure.
// ---------------------------------------------------------------------------

fn dag_strategy() -> impl Strategy<Value = rig_graph::DataGraph> {
    (2usize..40, prop::collection::vec((0u32..40, 0u32..40), 0..120)).prop_map(|(n, edges)| {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            // only forward edges in node order -> guaranteed acyclic
            if u < v {
                b.add_edge(u, v);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bfl_equals_transitive_closure_on_dags(g in dag_strategy()) {
        let bfl = BflIndex::new(&g);
        let tc = TransitiveClosure::new(&g);
        for u in 0..g.num_nodes() as NodeId {
            // on a DAG no node lies on a cycle, so nothing reaches itself
            prop_assert!(!bfl.reaches(u, u));
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(bfl.reaches(u, v), tc.reaches(u, v), "u={} v={}", u, v);
            }
        }
    }

    /// The DFS-interval labels on the condensation are a sound oracle: the
    /// negative cut never discards a reachable pair and the positive hit
    /// never invents one (checked on cyclic inputs, SCC-condensed).
    #[test]
    fn interval_oracle_sound_wrt_transitive_closure(g in graph_strategy()) {
        let bfl = BflIndex::new(&g);
        let tc = TransitiveClosure::new(&g);
        let cond = bfl.condensation();
        let intervals = bfl.intervals();
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                let (cu, cv) = (cond.component(u), cond.component(v));
                if cu == cv {
                    // intra-SCC pairs bypass the interval index entirely:
                    // reachable iff the component actually contains a cycle
                    let expect = cond.nontrivial[cu as usize];
                    prop_assert_eq!(tc.reaches(u, v), expect, "intra-SCC u={} v={}", u, v);
                    continue;
                }
                if intervals.cannot_reach(cu, cv) {
                    prop_assert!(!tc.reaches(u, v), "negative cut lied: u={} v={}", u, v);
                }
                if intervals.tree_descendant(cu, cv) {
                    prop_assert!(tc.reaches(u, v), "positive hit lied: u={} v={}", u, v);
                }
            }
        }
    }

    /// On DAGs the early-termination order is usable: candidates sorted by
    /// `begin` put every tree descendant of `u` before the first candidate
    /// with `begin > u.end`, so stopping there loses nothing.
    #[test]
    fn early_termination_cut_complete_on_dags(g in dag_strategy()) {
        let bfl = BflIndex::new(&g);
        let tc = TransitiveClosure::new(&g);
        let cond = bfl.condensation();
        let intervals = bfl.intervals();
        let mut nodes: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        intervals.sort_nodes_by_begin(cond, &mut nodes);
        for u in 0..g.num_nodes() as NodeId {
            let cu = cond.component(u) as usize;
            let mut past_cut = false;
            for &v in &nodes {
                let cv = cond.component(v) as usize;
                if intervals.begin[cv] > intervals.end[cu] {
                    past_cut = true;
                }
                if past_cut {
                    prop_assert!(
                        !tc.reaches(u, v),
                        "reachable candidate after the begin>end cut: u={} v={}", u, v
                    );
                }
            }
        }
    }
}
