//! Property tests: BFL and the materialized transitive closure must agree
//! with each other (and hence with ground truth) on arbitrary graphs,
//! including dense, cyclic and disconnected ones.

use proptest::prelude::*;
use rig_graph::{GraphBuilder, NodeId};
use rig_reach::{ancestors_of_set, descendants_of_set, BflIndex, Reachability, TransitiveClosure};

fn graph_strategy() -> impl Strategy<Value = rig_graph::DataGraph> {
    (2usize..40, prop::collection::vec((0u32..40, 0u32..40), 0..120)).prop_map(|(n, edges)| {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            b.add_edge(u, v); // self-loops allowed: cyclic SCC of size 1
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bfl_equals_transitive_closure(g in graph_strategy()) {
        let bfl = BflIndex::new(&g);
        let tc = TransitiveClosure::new(&g);
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(
                    bfl.reaches(u, v),
                    tc.reaches(u, v),
                    "u={} v={}", u, v
                );
            }
        }
    }

    #[test]
    fn set_reachability_equals_pointwise(g in graph_strategy(), seeds in prop::collection::vec(0u32..40, 1..5)) {
        let tc = TransitiveClosure::new(&g);
        let sources: rig_bitset::Bitset =
            seeds.iter().map(|&s| s % g.num_nodes() as u32).collect();
        let desc = descendants_of_set(&g, &sources);
        let anc = ancestors_of_set(&g, &sources);
        for v in 0..g.num_nodes() as NodeId {
            let expect_desc = sources.iter().any(|s| tc.reaches(s, v));
            let expect_anc = sources.iter().any(|s| tc.reaches(v, s));
            prop_assert_eq!(desc.contains(v), expect_desc, "desc v={}", v);
            prop_assert_eq!(anc.contains(v), expect_anc, "anc v={}", v);
        }
    }

    #[test]
    fn descendant_bitmaps_consistent(g in graph_strategy()) {
        let tc = TransitiveClosure::new(&g);
        for u in 0..g.num_nodes() as NodeId {
            let d = tc.descendants_of(u);
            for v in 0..g.num_nodes() as NodeId {
                prop_assert_eq!(d.contains(v), tc.reaches(u, v));
            }
        }
    }
}
