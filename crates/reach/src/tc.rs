//! Materialized transitive closure.
//!
//! One descendant bitmap per condensation component, computed in reverse
//! topological order. Exact, O(1) queries, but Θ(V²/64) memory in the worst
//! case — this is the index the GF-analogue is forced to build for
//! D-queries (§7.5, Fig. 18), and the ground truth for our property tests.

use std::time::Instant;

use crate::scc::Condensation;
use crate::Reachability;
use rig_bitset::Bitset;
use rig_graph::{DataGraph, GraphBuilder, NodeId};

/// Fully materialized transitive closure of a data graph.
pub struct TransitiveClosure {
    cond: Condensation,
    /// `desc[c]` = components reachable from `c` (excluding `c` itself).
    desc: Vec<Bitset>,
    /// Members of each component, ascending node id.
    members: Vec<Vec<NodeId>>,
    build_secs: f64,
}

impl TransitiveClosure {
    /// Builds the closure for `g`.
    pub fn new(g: &DataGraph) -> Self {
        let start = Instant::now();
        let cond = Condensation::new(g);
        let n = cond.count;
        let mut desc: Vec<Bitset> = vec![Bitset::new(); n];
        for &c in cond.topo.iter().rev() {
            let mut d = Bitset::new();
            for &child in &cond.dag_fwd[c as usize] {
                d.insert(child);
                d.or_assign(&desc[child as usize]);
            }
            desc[c as usize] = d;
        }
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..g.num_nodes() as NodeId {
            members[cond.component(v) as usize].push(v);
        }
        let build_secs = start.elapsed().as_secs_f64();
        TransitiveClosure { cond, desc, members, build_secs }
    }

    /// The underlying condensation.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// All nodes reachable from `u` with a non-empty path, as a bitmap.
    pub fn descendants_of(&self, u: NodeId) -> Bitset {
        let cu = self.cond.component(u);
        let mut out = Bitset::new();
        if self.cond.nontrivial[cu as usize] {
            for &m in &self.members[cu as usize] {
                out.insert(m);
            }
        }
        for c in self.desc[cu as usize].iter() {
            for &m in &self.members[c as usize] {
                out.insert(m);
            }
        }
        out
    }

    /// Total number of reachable node pairs `(u, v)` with `u ≺ v` — the
    /// size of the materialized closure graph.
    pub fn pair_count(&self) -> u64 {
        let mut total = 0u64;
        for c in 0..self.cond.count {
            let size = self.members[c].len() as u64;
            let mut reach_nodes = 0u64;
            for d in self.desc[c].iter() {
                reach_nodes += self.members[d as usize].len() as u64;
            }
            if self.cond.nontrivial[c] {
                reach_nodes += size; // members reach each other and themselves
            }
            total += size * reach_nodes;
        }
        total
    }

    /// Materializes the closure as a data graph (edge `u -> v` iff `u ≺ v`).
    /// This is what an edge-to-edge-only engine must evaluate D-queries on
    /// (§7.5); expect quadratic blow-up.
    pub fn to_graph(&self, g: &DataGraph) -> DataGraph {
        let mut b = GraphBuilder::with_capacity(g.num_nodes(), 0);
        for v in 0..g.num_nodes() as NodeId {
            b.add_node(g.label(v));
        }
        for u in 0..g.num_nodes() as NodeId {
            for v in self.descendants_of(u).iter() {
                b.add_edge(u, v);
            }
        }
        b.build()
    }
}

impl Reachability for TransitiveClosure {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let cu = self.cond.component(u);
        let cv = self.cond.component(v);
        if cu == cv {
            return self.cond.nontrivial[cu as usize];
        }
        self.desc[cu as usize].contains(cv)
    }

    fn build_seconds(&self) -> f64 {
        self.build_secs
    }

    fn name(&self) -> &'static str {
        "TC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{naive_reaches, random_graph};

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..8u64 {
            let g = random_graph(60, 150, seed);
            let tc = TransitiveClosure::new(&g);
            for u in 0..60u32 {
                for v in 0..60u32 {
                    assert_eq!(
                        tc.reaches(u, v),
                        naive_reaches(&g, u, v),
                        "seed={seed} u={u} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn descendants_and_pair_count_agree() {
        for seed in 0..4u64 {
            let g = random_graph(40, 90, seed);
            let tc = TransitiveClosure::new(&g);
            let mut pairs = 0u64;
            for u in 0..40u32 {
                let d = tc.descendants_of(u);
                for v in 0..40u32 {
                    assert_eq!(d.contains(v), tc.reaches(u, v), "u={u} v={v}");
                }
                pairs += d.len();
            }
            assert_eq!(pairs, tc.pair_count(), "seed={seed}");
        }
    }

    #[test]
    fn closure_graph_has_edge_iff_reachable() {
        let g = random_graph(30, 60, 11);
        let tc = TransitiveClosure::new(&g);
        let cg = tc.to_graph(&g);
        for u in 0..30u32 {
            for v in 0..30u32 {
                assert_eq!(cg.has_edge(u, v), tc.reaches(u, v));
            }
        }
        assert_eq!(cg.num_edges() as u64, tc.pair_count());
    }
}
