//! Reusable per-thread visited-set scratch for graph traversals.
//!
//! Traversal fallbacks (the BFL guided DFS, the snapshot-overlay BFS) need
//! a visited set per call. Allocating one per probe costs O(|V|) zeroing
//! before any work; a shared buffer behind a lock serializes parallel
//! RIG-build workers. This epoch-stamped buffer in a `thread_local` gives
//! both properties up: O(1) amortized reset (bump the epoch; the array is
//! only re-zeroed on the rare u32 wraparound) and zero cross-thread
//! coordination, so the indexes that use it stay plain-data `Sync`.

use std::cell::RefCell;

/// An epoch-stamped visited set: `stamp[i] == epoch` means visited in the
/// current traversal.
#[derive(Default)]
pub(crate) struct VisitScratch {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitScratch {
    /// Starts a new traversal over `n` slots; returns the epoch to stamp
    /// with. Grows (never shrinks) the buffer and handles epoch wrap.
    pub(crate) fn begin(&mut self, n: usize) -> u32 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }

    /// Marks `i` visited; returns `true` iff it was not yet visited this
    /// traversal.
    #[inline]
    pub(crate) fn visit(&mut self, i: usize, epoch: u32) -> bool {
        if self.stamp[i] == epoch {
            false
        } else {
            self.stamp[i] = epoch;
            true
        }
    }
}

/// Runs `f` with this thread's scratch, initialized for `n` slots.
/// Traversals must not nest within one callback — each user gets its own
/// keyed buffer below to keep the BFL fallback and the overlay BFS from
/// clobbering each other even if one ever calls into the other.
macro_rules! scratch_key {
    ($name:ident) => {
        pub(crate) fn $name<R>(n: usize, f: impl FnOnce(&mut VisitScratch, u32) -> R) -> R {
            thread_local! {
                static SCRATCH: RefCell<VisitScratch> = RefCell::new(VisitScratch::default());
            }
            SCRATCH.with(|s| {
                let mut s = s.borrow_mut();
                let epoch = s.begin(n);
                f(&mut s, epoch)
            })
        }
    };
}

scratch_key!(with_bfl_scratch);
scratch_key!(with_overlay_scratch);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_reset_in_o1_and_survive_wrap() {
        let mut s = VisitScratch::default();
        let e1 = s.begin(4);
        assert!(s.visit(2, e1));
        assert!(!s.visit(2, e1));
        let e2 = s.begin(4);
        assert_ne!(e1, e2);
        assert!(s.visit(2, e2), "new epoch forgets old visits");
        // force wraparound
        s.epoch = u32::MAX;
        let e3 = s.begin(8);
        assert_eq!(e3, 1);
        assert!(s.visit(7, e3));
    }

    #[test]
    fn thread_local_helpers_are_independent() {
        with_bfl_scratch(4, |s, e| {
            assert!(s.visit(0, e));
            with_overlay_scratch(4, |t, f| {
                assert!(t.visit(0, f), "distinct buffers");
            });
            assert!(!s.visit(0, e));
        });
    }
}
