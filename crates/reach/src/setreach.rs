//! Batched set reachability: descendants / ancestors of a *set* of nodes
//! in one multi-source BFS sweep.
//!
//! The double-simulation select phase (§4.2) repeatedly asks, for a
//! reachability query edge `(qi, qj)`: *which candidate nodes of `qi` reach
//! at least one candidate of `qj`?* That is exactly membership in
//! `ancestors_of_set(G, FB(qj))`, computable in O(|V| + |E|) — far cheaper
//! than per-pair probes when candidate sets are large.

use rig_bitset::Bitset;
use rig_graph::{GraphView, NodeId};

/// All nodes `v` such that some `s ∈ sources` has a non-empty path `s ⇝ v`.
/// (A source is included only if it is reachable *from* a source, e.g. on a
/// cycle or downstream of another source.)
pub fn descendants_of_set<'a>(g: impl Into<GraphView<'a>>, sources: &Bitset) -> Bitset {
    sweep(g.into(), sources, Direction::Forward)
}

/// All nodes `v` such that `v` has a non-empty path to some `s ∈ sources`.
pub fn ancestors_of_set<'a>(g: impl Into<GraphView<'a>>, sources: &Bitset) -> Bitset {
    sweep(g.into(), sources, Direction::Backward)
}

enum Direction {
    Forward,
    Backward,
}

fn sweep(g: GraphView<'_>, sources: &Bitset, dir: Direction) -> Bitset {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    // Seed with the one-step neighbors of every source, so that membership
    // certifies a path of length >= 1.
    for s in sources.iter() {
        let neigh = match dir {
            Direction::Forward => g.out_neighbors(s),
            Direction::Backward => g.in_neighbors(s),
        };
        for &x in neigh {
            if !seen[x as usize] {
                seen[x as usize] = true;
                frontier.push(x);
            }
        }
    }
    let mut head = 0;
    while head < frontier.len() {
        let v = frontier[head];
        head += 1;
        let neigh = match dir {
            Direction::Forward => g.out_neighbors(v),
            Direction::Backward => g.in_neighbors(v),
        };
        for &x in neigh {
            if !seen[x as usize] {
                seen[x as usize] = true;
                frontier.push(x);
            }
        }
    }
    frontier.sort_unstable();
    Bitset::from_sorted_dedup(&frontier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{naive_reaches, random_graph};

    #[test]
    fn matches_per_node_reachability() {
        for seed in 0..6u64 {
            let g = random_graph(50, 110, seed);
            let sources = Bitset::from_slice(&[0, 7, 23]);
            let desc = descendants_of_set(&g, &sources);
            let anc = ancestors_of_set(&g, &sources);
            for v in 0..50u32 {
                let expect_desc = sources.iter().any(|s| naive_reaches(&g, s, v));
                let expect_anc = sources.iter().any(|s| naive_reaches(&g, v, s));
                assert_eq!(desc.contains(v), expect_desc, "seed={seed} v={v} desc");
                assert_eq!(anc.contains(v), expect_anc, "seed={seed} v={v} anc");
            }
        }
    }

    #[test]
    fn empty_sources_empty_result() {
        let g = random_graph(10, 20, 0);
        assert!(descendants_of_set(&g, &Bitset::new()).is_empty());
        assert!(ancestors_of_set(&g, &Bitset::new()).is_empty());
    }

    #[test]
    fn source_on_cycle_is_its_own_descendant() {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for _ in 0..2 {
            b.add_node(0);
        }
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        let d = descendants_of_set(&g, &Bitset::from_slice(&[0]));
        assert!(d.contains(0));
        assert!(d.contains(1));
    }
}
