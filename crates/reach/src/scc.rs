//! Tarjan SCC condensation (iterative, no recursion).
//!
//! All reachability indexes work on the condensation DAG: two nodes in the
//! same SCC reach each other (with a non-empty path iff the SCC has an edge,
//! i.e. size > 1 or a self-loop).

use rig_graph::{DataGraph, NodeId};

/// The SCC condensation of a data graph.
pub struct Condensation {
    /// `comp[v]` = component id of node `v`; component ids are dense.
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Condensation DAG forward adjacency (sorted, deduplicated).
    pub dag_fwd: Vec<Vec<u32>>,
    /// Condensation DAG backward adjacency (sorted, deduplicated).
    pub dag_bwd: Vec<Vec<u32>>,
    /// Component ids in topological order (sources first).
    pub topo: Vec<u32>,
    /// `nontrivial[c]` = true iff component `c` contains a cycle
    /// (size > 1, or a single node with a self-loop).
    pub nontrivial: Vec<bool>,
}

impl Condensation {
    /// Computes the condensation of `g`.
    pub fn new(g: &DataGraph) -> Self {
        let n = g.num_nodes();
        let mut comp = vec![u32::MAX; n];
        let mut index = vec![u32::MAX; n]; // discovery index
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_count = 0u32;

        // Explicit DFS state: (node, next-child-position).
        let mut call: Vec<(NodeId, usize)> = Vec::new();
        for root in 0..n as NodeId {
            if index[root as usize] != u32::MAX {
                continue;
            }
            call.push((root, 0));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                let out = g.out_neighbors(v);
                if *ci < out.len() {
                    let w = out[*ci];
                    *ci += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&mut (p, _)) = call.last_mut() {
                        lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }

        let count = comp_count as usize;
        let mut comp_size = vec![0u32; count];
        for &c in &comp {
            comp_size[c as usize] += 1;
        }
        let mut nontrivial: Vec<bool> = comp_size.iter().map(|&s| s > 1).collect();
        let mut dag_fwd: Vec<Vec<u32>> = vec![Vec::new(); count];
        let mut dag_bwd: Vec<Vec<u32>> = vec![Vec::new(); count];
        for (u, v) in g.edges() {
            let cu = comp[u as usize];
            let cv = comp[v as usize];
            if cu == cv {
                // self-loop or intra-SCC edge: single-node SCCs with a
                // self-loop are cyclic.
                if u == v {
                    nontrivial[cu as usize] = true;
                }
            } else {
                dag_fwd[cu as usize].push(cv);
                dag_bwd[cv as usize].push(cu);
            }
        }
        for adj in dag_fwd.iter_mut().chain(dag_bwd.iter_mut()) {
            adj.sort_unstable();
            adj.dedup();
        }

        // Kahn topological order on the condensation.
        let mut indeg: Vec<u32> = dag_bwd.iter().map(|a| a.len() as u32).collect();
        let mut topo = Vec::with_capacity(count);
        let mut queue: Vec<u32> = (0..count as u32).filter(|&c| indeg[c as usize] == 0).collect();
        while let Some(c) = queue.pop() {
            topo.push(c);
            for &d in &dag_fwd[c as usize] {
                indeg[d as usize] -= 1;
                if indeg[d as usize] == 0 {
                    queue.push(d);
                }
            }
        }
        debug_assert_eq!(topo.len(), count, "condensation must be acyclic");

        Condensation { comp, count, dag_fwd, dag_bwd, topo, nontrivial }
    }

    /// Component of node `v`.
    #[inline]
    pub fn component(&self, v: NodeId) -> u32 {
        self.comp[v as usize]
    }

    /// True iff `u` and `v` share a component.
    #[inline]
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.comp[u as usize] == self.comp[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::GraphBuilder;

    fn graph(edges: &[(u32, u32)], n: u32) -> rig_graph::DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let g = graph(&[(0, 1), (1, 2), (0, 2)], 3);
        let c = Condensation::new(&g);
        assert_eq!(c.count, 3);
        assert!(c.nontrivial.iter().all(|&b| !b));
        // topo order respects edges
        let pos: Vec<usize> =
            (0..3).map(|v| c.topo.iter().position(|&x| x == c.comp[v]).unwrap()).collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
    }

    #[test]
    fn cycle_collapses() {
        let g = graph(&[(0, 1), (1, 2), (2, 0), (2, 3)], 4);
        let c = Condensation::new(&g);
        assert_eq!(c.count, 2);
        assert!(c.same_component(0, 1));
        assert!(c.same_component(1, 2));
        assert!(!c.same_component(0, 3));
        assert!(c.nontrivial[c.component(0) as usize]);
        assert!(!c.nontrivial[c.component(3) as usize]);
        let c0 = c.component(0) as usize;
        assert_eq!(c.dag_fwd[c0], vec![c.component(3)]);
    }

    #[test]
    fn self_loop_is_nontrivial() {
        let g = graph(&[(0, 0), (0, 1)], 2);
        let c = Condensation::new(&g);
        assert_eq!(c.count, 2);
        assert!(c.nontrivial[c.component(0) as usize]);
        assert!(!c.nontrivial[c.component(1) as usize]);
    }

    #[test]
    fn two_disjoint_cycles() {
        let g = graph(&[(0, 1), (1, 0), (2, 3), (3, 2)], 4);
        let c = Condensation::new(&g);
        assert_eq!(c.count, 2);
        assert!(c.same_component(0, 1));
        assert!(c.same_component(2, 3));
        assert!(!c.same_component(0, 2));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 200k-node chain: the iterative Tarjan must not recurse.
        let n = 200_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph(&edges, n);
        let c = Condensation::new(&g);
        assert_eq!(c.count, n as usize);
    }
}
