//! Delta-aware reachability: BFL answers on the base segment, overlay
//! traversal for everything the delta could have changed.
//!
//! The BFL index describes the **base** graph only — committed mutations
//! invalidate neither its Bloom labels nor its interval labels, so a
//! dirty [`Snapshot`] needs an oracle that layers correction on top:
//!
//! * **insert-only deltas** keep every base path alive, so a positive BFL
//!   answer between live base nodes stands;
//! * **delete-only deltas** add no paths, so a negative BFL answer stands;
//! * anything the cuts cannot certify falls back to a BFS over the
//!   overlay adjacency (patched regions read the delta, untouched regions
//!   read the base CSR) with per-call scratch, mirroring the paper's
//!   position that the reachability scheme is pluggable (§7.1).
//!
//! Compaction folds the delta into a fresh base and rebuilds BFL, at
//! which point queries return to pure O(1)-ish index probes.

use crate::{BflIndex, Reachability};
use rig_graph::{NodeId, Snapshot};

/// Reachability over one [`Snapshot`]: `base` must be the BFL index of
/// `snap.base()`.
pub struct SnapshotReach<'a> {
    snap: &'a Snapshot,
    base: &'a BflIndex,
}

impl<'a> SnapshotReach<'a> {
    pub fn new(snap: &'a Snapshot, base: &'a BflIndex) -> Self {
        SnapshotReach { snap, base }
    }

    /// BFS over the overlay adjacency from `u`, looking for `v` along
    /// paths of length >= 1. The visited set is a per-thread
    /// epoch-stamped buffer (O(1) amortized reset, no O(|V|) per-probe
    /// allocation — simulation can issue thousands of these).
    fn overlay_bfs(&self, u: NodeId, v: NodeId) -> bool {
        let n = self.snap.num_nodes();
        crate::scratch::with_overlay_scratch(n, |seen, epoch| {
            let mut frontier: Vec<NodeId> = Vec::new();
            for &x in self.snap.out_neighbors(u) {
                if x == v {
                    return true;
                }
                if seen.visit(x as usize, epoch) {
                    frontier.push(x);
                }
            }
            let mut head = 0;
            while head < frontier.len() {
                let w = frontier[head];
                head += 1;
                for &x in self.snap.out_neighbors(w) {
                    if x == v {
                        return true;
                    }
                    if seen.visit(x as usize, epoch) {
                        frontier.push(x);
                    }
                }
            }
            false
        })
    }
}

impl Reachability for SnapshotReach<'_> {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let snap = self.snap;
        if !snap.is_dirty() {
            return self.base.reaches(u, v);
        }
        // Tombstoned endpoints have no edges in the overlay.
        if !snap.is_live(u) || !snap.is_live(v) {
            return false;
        }
        let delta = snap.delta();
        let base_n = snap.base().num_nodes() as NodeId;
        let base_endpoints = u < base_n && v < base_n;
        let insert_only = delta.edges_removed() == 0 && delta.nodes_removed() == 0;
        let delete_only = delta.edges_added() == 0;
        if base_endpoints {
            if delete_only && !self.base.reaches(u, v) {
                // the delta added no edges: overlay paths ⊆ base paths
                return false;
            }
            if insert_only && self.base.reaches(u, v) {
                // the delta removed nothing: base paths survive verbatim
                return true;
            }
        } else if delete_only {
            // an added node with no added edges is isolated
            return false;
        }
        self.overlay_bfs(u, v)
    }

    fn build_seconds(&self) -> f64 {
        self.base.build_seconds()
    }

    fn name(&self) -> &'static str {
        "BFL+delta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_graph;
    use rig_graph::{CommitImpact, DeltaOverlay, GraphView, LabelSpec, MutationOp};
    use std::sync::Arc;

    /// Ground truth on the overlay view.
    fn naive(snap: &Snapshot, u: NodeId, v: NodeId) -> bool {
        let g = GraphView::from(snap);
        let mut seen = vec![false; g.num_nodes()];
        let mut stack: Vec<NodeId> = g.out_neighbors(u).to_vec();
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            if !seen[x as usize] {
                seen[x as usize] = true;
                stack.extend_from_slice(g.out_neighbors(x));
            }
        }
        false
    }

    fn check_all(snap: &Snapshot, bfl: &BflIndex) {
        let r = SnapshotReach::new(snap, bfl);
        let n = snap.num_nodes() as NodeId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(r.reaches(u, v), naive(snap, u, v), "u={u} v={v}");
            }
        }
    }

    fn mutated_snapshot(seed: u64, ops: &[MutationOp]) -> (Snapshot, BflIndex) {
        let base = Arc::new(random_graph(30, 70, seed));
        let bfl = BflIndex::new(&base);
        let mut d = DeltaOverlay::new(base);
        let mut im = CommitImpact::default();
        for op in ops {
            d.apply(op, &mut im).unwrap();
        }
        (Snapshot::new(Arc::new(d), 1), bfl)
    }

    #[test]
    fn clean_snapshot_delegates_to_bfl() {
        let base = Arc::new(random_graph(20, 50, 1));
        let bfl = BflIndex::new(&base);
        let snap = Snapshot::clean(Arc::clone(&base));
        let r = SnapshotReach::new(&snap, &bfl);
        for u in 0..20u32 {
            for v in 0..20u32 {
                assert_eq!(r.reaches(u, v), bfl.reaches(u, v));
            }
        }
        assert_eq!(r.name(), "BFL+delta");
    }

    #[test]
    fn insert_only_deltas() {
        for seed in 0..4u64 {
            let (snap, bfl) = mutated_snapshot(
                seed,
                &[
                    MutationOp::AddNode(LabelSpec::Id(0)), // id 30
                    MutationOp::AddEdge(30, 3),
                    MutationOp::AddEdge(7, 30),
                    MutationOp::AddEdge(1, 2),
                ],
            );
            check_all(&snap, &bfl);
        }
    }

    #[test]
    fn delete_only_deltas() {
        for seed in 0..4u64 {
            let base = Arc::new(random_graph(30, 70, seed));
            let bfl = BflIndex::new(&base);
            let mut d = DeltaOverlay::new(Arc::clone(&base));
            let mut im = CommitImpact::default();
            // drop the first few edges that exist
            let mut dropped = 0;
            'outer: for u in 0..30u32 {
                for &v in base.out_neighbors(u) {
                    d.apply(&MutationOp::RemoveEdge(u, v), &mut im).unwrap();
                    dropped += 1;
                    if dropped == 5 {
                        break 'outer;
                    }
                }
            }
            d.apply(&MutationOp::RemoveNode(15), &mut im).unwrap();
            let snap = Snapshot::new(Arc::new(d), 1);
            check_all(&snap, &bfl);
        }
    }

    #[test]
    fn mixed_deltas() {
        for seed in 0..4u64 {
            let base = Arc::new(random_graph(25, 60, seed));
            let bfl = BflIndex::new(&base);
            let mut d = DeltaOverlay::new(Arc::clone(&base));
            let mut im = CommitImpact::default();
            d.apply(&MutationOp::AddNode(LabelSpec::Id(0)), &mut im).unwrap(); // 25
            d.apply(&MutationOp::AddEdge(25, 0), &mut im).unwrap();
            d.apply(&MutationOp::AddEdge(4, 25), &mut im).unwrap();
            d.apply(&MutationOp::RemoveNode(9), &mut im).unwrap();
            if base.has_edge(0, 1) {
                d.apply(&MutationOp::RemoveEdge(0, 1), &mut im).unwrap();
            }
            d.apply(&MutationOp::AddEdge(2, 3), &mut im).unwrap();
            let snap = Snapshot::new(Arc::new(d), 1);
            check_all(&snap, &bfl);
        }
    }
}
