//! BFL — Bloom Filter Labeling (Su, Zhu, Wei, Yu: "Reachability Querying:
//! Can It Be Even Faster?", TKDE 2017), the reachability scheme the paper
//! uses for all three matchers (§7.1).
//!
//! Per condensation component we store:
//!
//! * an interval label (from [`crate::interval`]) — O(1) negative cut and
//!   O(1) positive hit for DFS-tree descendants;
//! * a k-bit Bloom filter `Lout` summarizing the hashes of all descendants
//!   and `Lin` summarizing all ancestors — `h(v) ∉ Lout(u)` or
//!   `h(u) ∉ Lin(v)` are O(1) negative cuts;
//! * a guided DFS fallback that prunes with both label kinds.
//!
//! Construction is two linear passes over the condensation DAG (reverse
//! topological for `Lout`, topological for `Lin`), so index build time stays
//! tiny even on large graphs — the property Fig. 18(a) contrasts against
//! transitive-closure and catalog construction.

use std::time::Instant;

use crate::interval::IntervalLabels;
use crate::scc::Condensation;
use crate::Reachability;
use rig_graph::{DataGraph, NodeId};

/// Number of 64-bit words per Bloom filter (256 bits).
const FILTER_WORDS: usize = 4;
const FILTER_BITS: u64 = (FILTER_WORDS * 64) as u64;

type Filter = [u64; FILTER_WORDS];

#[inline]
fn hash_component(c: u32) -> (usize, u64) {
    // Fibonacci hashing into the filter bit space.
    let h = (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - 8);
    let bit = h % FILTER_BITS;
    ((bit >> 6) as usize, 1u64 << (bit & 63))
}

#[inline]
fn filter_contains(f: &Filter, c: u32) -> bool {
    let (w, m) = hash_component(c);
    f[w] & m != 0
}

#[inline]
fn filter_or(dst: &mut Filter, src: &Filter) {
    for i in 0..FILTER_WORDS {
        dst[i] |= src[i];
    }
}

/// The BFL reachability index.
///
/// Plain data end to end: the guided-DFS fallback keeps its scratch on
/// the caller's stack, so the index is trivially `Sync` and parallel
/// RIG-construction workers probe it with zero coordination (no shared
/// scratch lock to convoy on).
pub struct BflIndex {
    cond: Condensation,
    intervals: IntervalLabels,
    lout: Vec<Filter>,
    lin: Vec<Filter>,
    build_secs: f64,
}

impl BflIndex {
    /// Builds the index for `g`.
    pub fn new(g: &DataGraph) -> Self {
        let start = Instant::now();
        let cond = Condensation::new(g);
        let intervals = IntervalLabels::new(&cond);
        let n = cond.count;
        let mut lout: Vec<Filter> = vec![[0; FILTER_WORDS]; n];
        let mut lin: Vec<Filter> = vec![[0; FILTER_WORDS]; n];
        // Lout in reverse topological order: self hash ∪ children's Lout.
        for &c in cond.topo.iter().rev() {
            let (w, m) = hash_component(c);
            let mut f = [0u64; FILTER_WORDS];
            f[w] = m;
            for &d in &cond.dag_fwd[c as usize] {
                filter_or(&mut f, &lout[d as usize]);
            }
            lout[c as usize] = f;
        }
        // Lin in topological order: self hash ∪ parents' Lin.
        for &c in cond.topo.iter() {
            let (w, m) = hash_component(c);
            let mut f = [0u64; FILTER_WORDS];
            f[w] = m;
            for &p in &cond.dag_bwd[c as usize] {
                filter_or(&mut f, &lin[p as usize]);
            }
            lin[c as usize] = f;
        }
        let build_secs = start.elapsed().as_secs_f64();
        BflIndex { cond, intervals, lout, lin, build_secs }
    }

    /// The underlying condensation (shared with RIG construction).
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The interval labels (used by early expansion termination, §4.5).
    pub fn intervals(&self) -> &IntervalLabels {
        &self.intervals
    }

    /// Component-level reachability (`cu` can reach `cv` through DAG edges,
    /// `cu != cv`).
    fn comp_reaches(&self, cu: u32, cv: u32) -> bool {
        if cu == cv {
            return true;
        }
        if self.intervals.tree_descendant(cu, cv) {
            return true;
        }
        if self.intervals.cannot_reach(cu, cv) {
            return false;
        }
        if !filter_contains(&self.lout[cu as usize], cv)
            || !filter_contains(&self.lin[cv as usize], cu)
        {
            return false;
        }
        // Guided DFS with interval/Bloom pruning. The visited set is a
        // per-thread epoch-stamped buffer: O(1) amortized reset, no
        // per-probe allocation, and no shared state — concurrent probes
        // never serialize.
        crate::scratch::with_bfl_scratch(self.cond.count, |visited, epoch| {
            let mut stack: Vec<u32> = vec![cu];
            visited.visit(cu as usize, epoch);
            while let Some(c) = stack.pop() {
                for &d in &self.cond.dag_fwd[c as usize] {
                    if d == cv || self.intervals.tree_descendant(d, cv) {
                        return true;
                    }
                    if self.intervals.cannot_reach(d, cv)
                        || !filter_contains(&self.lout[d as usize], cv)
                    {
                        continue;
                    }
                    if visited.visit(d as usize, epoch) {
                        stack.push(d);
                    }
                }
            }
            false
        })
    }
}

impl Reachability for BflIndex {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let cu = self.cond.component(u);
        let cv = self.cond.component(v);
        if cu == cv {
            // Same SCC: a non-empty path exists iff the SCC is cyclic.
            return self.cond.nontrivial[cu as usize];
        }
        self.comp_reaches(cu, cv)
    }

    fn build_seconds(&self) -> f64 {
        self.build_secs
    }

    fn name(&self) -> &'static str {
        "BFL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{naive_reaches, random_graph};

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..8u64 {
            let g = random_graph(80, 160, seed);
            let idx = BflIndex::new(&g);
            for u in 0..80u32 {
                for v in 0..80u32 {
                    assert_eq!(
                        idx.reaches(u, v),
                        naive_reaches(&g, u, v),
                        "seed={seed} u={u} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn self_reachability_requires_cycle() {
        let g = random_graph(5, 0, 0);
        let idx = BflIndex::new(&g);
        for v in 0..5u32 {
            assert!(!idx.reaches(v, v));
        }
    }

    #[test]
    fn cycle_members_reach_themselves() {
        use rig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let g = b.build();
        let idx = BflIndex::new(&g);
        assert!(idx.reaches(0, 0));
        assert!(idx.reaches(1, 1));
        assert!(!idx.reaches(2, 2));
        assert!(idx.reaches(0, 2));
        assert!(!idx.reaches(2, 0));
    }

    #[test]
    fn build_time_recorded() {
        let g = random_graph(100, 300, 7);
        let idx = BflIndex::new(&g);
        assert!(idx.build_seconds() >= 0.0);
        assert_eq!(idx.name(), "BFL");
    }

    #[test]
    fn repeated_fallback_probes_stay_correct() {
        // Hammer the guided-DFS fallback path; per-call scratch means no
        // cross-call state to corrupt.
        let g = random_graph(40, 120, 3);
        let idx = BflIndex::new(&g);
        let expect = idx.reaches(0, 39);
        for _ in 0..1000 {
            assert_eq!(idx.reaches(0, 39), expect);
        }
    }

    /// The index is probed from many threads at once (the parallel
    /// RIG-build pattern); answers must match the single-threaded ones.
    #[test]
    fn concurrent_probes_agree() {
        let g = random_graph(60, 150, 11);
        let idx = BflIndex::new(&g);
        let expect: Vec<bool> = (0..60u32)
            .flat_map(|u| (0..60u32).map(move |v| (u, v)))
            .map(|(u, v)| idx.reaches(u, v))
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let got: Vec<bool> = (0..60u32)
                        .flat_map(|u| (0..60u32).map(move |v| (u, v)))
                        .map(|(u, v)| idx.reaches(u, v))
                        .collect();
                    assert_eq!(got, expect);
                });
            }
        });
    }
}
