//! Reachability substrate (§2, §6 and §7.5 of the paper).
//!
//! Checking `u ≺ v` (node reachability, Def. 2.2) is the core primitive
//! behind reachability query edges. The paper uses **BFL** (Bloom Filter
//! Labeling, Su et al., TKDE 2017) and notes that any indexing scheme can be
//! plugged in. We provide:
//!
//! * [`scc`] — Tarjan strongly-connected-component condensation, shared by
//!   every index (reachability is an SCC-level property);
//! * [`interval`] — DFS interval labels on the condensation, giving O(1)
//!   *negative* cuts (`u.end < v.begin ⇒ u ⊀ v`) and O(1) *positive* hits
//!   for tree descendants; also used for the early-expansion-termination
//!   optimization of §4.5;
//! * [`bfl`] — the BFL index: Bloom-filter in/out labels + interval labels
//!   + pruned DFS fallback;
//! * [`tc`] — materialized transitive closure (bitmap per component). Exact
//!   and fast but memory-hungry; this is what the GF baseline has to build
//!   for D-queries in §7.5 (Fig. 18), and what property tests use as ground
//!   truth;
//! * [`setreach`] — multi-source BFS descendant/ancestor sets, the batched
//!   form of reachability used by the double-simulation select phase.

pub mod bfl;
pub mod interval;
pub mod overlay;
pub mod scc;
mod scratch;
pub mod setreach;
pub mod tc;

pub use bfl::BflIndex;
pub use interval::IntervalLabels;
pub use overlay::SnapshotReach;
pub use scc::Condensation;
pub use setreach::{ancestors_of_set, descendants_of_set};
pub use tc::TransitiveClosure;

use rig_graph::NodeId;

/// A node-reachability oracle: `reaches(u, v)` answers `u ≺ v` (is there a
/// path of length ≥ 1 from `u` to `v`?).
///
/// Note the paper's Def. 2.2 defines `u ≺ v` as "there exists a path from u
/// to v"; following the convention used by its example RIGs, a node reaches
/// itself only when it lies on a cycle (a non-empty path exists).
///
/// ```
/// use rig_graph::GraphBuilder;
/// use rig_reach::{BflIndex, Reachability};
/// let mut b = GraphBuilder::new();
/// let (x, y, z) = (b.add_node(0), b.add_node(0), b.add_node(0));
/// b.add_edge(x, y);
/// b.add_edge(y, z);
/// let g = b.build();
/// let idx = BflIndex::new(&g);
/// assert!(idx.reaches(x, z));
/// assert!(!idx.reaches(z, x));
/// assert!(!idx.reaches(x, x)); // no cycle through x
/// ```
pub trait Reachability {
    /// True iff there is a non-empty path from `u` to `v`.
    fn reaches(&self, u: NodeId, v: NodeId) -> bool;

    /// Index construction time, for the Fig. 18(a) build-time comparison.
    fn build_seconds(&self) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rig_graph::{DataGraph, GraphBuilder, NodeId};

    /// Random graph for cross-checking indexes against naive DFS.
    pub fn random_graph(n: usize, m: usize, seed: u64) -> DataGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Ground truth: DFS from u, path length >= 1.
    pub fn naive_reaches(g: &DataGraph, u: NodeId, v: NodeId) -> bool {
        let mut seen = vec![false; g.num_nodes()];
        let mut stack: Vec<NodeId> = g.out_neighbors(u).to_vec();
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            if !seen[x as usize] {
                seen[x as usize] = true;
                stack.extend_from_slice(g.out_neighbors(x));
            }
        }
        false
    }
}
