//! DFS interval labels on the condensation DAG (§4.5 of the paper).
//!
//! Every DAG node gets `(begin, end)` from one depth-first traversal:
//! `begin` is the discovery time, `end` the largest discovery time in the
//! node's DFS subtree. Two facts drive the pruning:
//!
//! * **negative cut**: if `u.end < v.begin` then `u` cannot reach `v`
//!   (nodes discovered after `u`'s subtree closes are unreachable from `u`);
//! * **positive hit**: if `u.begin < v.begin ≤ u.end` then `v` is a DFS-tree
//!   descendant of `u` and hence reachable through tree edges.
//!
//! The paper orders candidate sets by `begin` and stops expanding a node
//! `u` as soon as a candidate with `begin > u.end` is met ("early expansion
//! termination", reported to save up to 30%).

use crate::scc::Condensation;
use rig_graph::NodeId;

/// Interval labels for the components of a [`Condensation`].
pub struct IntervalLabels {
    /// `begin[c]`, `end[c]` for component `c`.
    pub begin: Vec<u32>,
    pub end: Vec<u32>,
}

impl IntervalLabels {
    /// Runs one DFS over the condensation DAG (roots = in-degree-0
    /// components, in topological order for determinism).
    pub fn new(cond: &Condensation) -> Self {
        let n = cond.count;
        let mut begin = vec![u32::MAX; n];
        let mut end = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(u32, usize)> = Vec::new();
        // Visit roots in topo order so every component is covered.
        for &root in &cond.topo {
            if begin[root as usize] != u32::MAX {
                continue;
            }
            begin[root as usize] = clock;
            end[root as usize] = clock;
            clock += 1;
            stack.push((root, 0));
            while let Some(&mut (c, ref mut ci)) = stack.last_mut() {
                let children = &cond.dag_fwd[c as usize];
                if *ci < children.len() {
                    let d = children[*ci];
                    *ci += 1;
                    if begin[d as usize] == u32::MAX {
                        begin[d as usize] = clock;
                        end[d as usize] = clock;
                        clock += 1;
                        stack.push((d, 0));
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        let e = end[c as usize];
                        if e > end[p as usize] {
                            end[p as usize] = e;
                        }
                    }
                }
            }
        }
        IntervalLabels { begin, end }
    }

    /// Negative cut at the component level.
    #[inline]
    pub fn cannot_reach(&self, cu: u32, cv: u32) -> bool {
        self.end[cu as usize] < self.begin[cv as usize]
    }

    /// Positive hit: `cv` is a DFS-tree descendant of `cu`.
    #[inline]
    pub fn tree_descendant(&self, cu: u32, cv: u32) -> bool {
        self.begin[cu as usize] < self.begin[cv as usize]
            && self.begin[cv as usize] <= self.end[cu as usize]
    }

    /// Sorts node ids ascending by the `begin` label of their component —
    /// the access order required by early expansion termination.
    pub fn sort_nodes_by_begin(&self, cond: &Condensation, nodes: &mut [NodeId]) {
        nodes.sort_unstable_by_key(|&v| self.begin[cond.component(v) as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{naive_reaches, random_graph};
    use rig_graph::GraphBuilder;

    fn labels(edges: &[(u32, u32)], n: u32) -> (Condensation, IntervalLabels) {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let c = Condensation::new(&g);
        let l = IntervalLabels::new(&c);
        (c, l)
    }

    #[test]
    fn chain_intervals_nest() {
        let (c, l) = labels(&[(0, 1), (1, 2)], 3);
        let (c0, c1, c2) = (c.component(0), c.component(1), c.component(2));
        assert!(l.tree_descendant(c0, c1));
        assert!(l.tree_descendant(c0, c2));
        assert!(l.tree_descendant(c1, c2));
        assert!(!l.tree_descendant(c2, c0));
        assert!(l.cannot_reach(c2, c0) || l.begin[c0 as usize] < l.begin[c2 as usize]);
    }

    #[test]
    fn negative_cut_is_sound_on_random_graphs() {
        for seed in 0..5u64 {
            let g = random_graph(60, 120, seed);
            let c = Condensation::new(&g);
            let l = IntervalLabels::new(&c);
            for u in 0..60u32 {
                for v in 0..60u32 {
                    let cu = c.component(u);
                    let cv = c.component(v);
                    if cu != cv && l.cannot_reach(cu, cv) {
                        assert!(
                            !naive_reaches(&g, u, v),
                            "seed={seed} u={u} v={v}: negative cut unsound"
                        );
                    }
                    if l.tree_descendant(cu, cv) {
                        assert!(
                            naive_reaches(&g, u, v),
                            "seed={seed} u={u} v={v}: positive hit unsound"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sort_by_begin_orders_ancestors_first_on_chain() {
        let (c, l) = labels(&[(0, 1), (1, 2), (0, 3)], 4);
        let mut nodes = vec![2u32, 3, 1, 0];
        l.sort_nodes_by_begin(&c, &mut nodes);
        assert_eq!(nodes[0], 0);
    }
}
