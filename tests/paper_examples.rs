//! The paper's worked examples, end to end across crates.

use rigmatch::core::{GmConfig, Session};
use rigmatch::datasets::examples::{fig2_graph, fig4_g2};
use rigmatch::query::{fig2_query, transitive_reduction, EdgeKind, PatternQuery};
use rigmatch::reach::BflIndex;
use rigmatch::rig::{build_rig, RigOptions};
use rigmatch::sim::{double_simulation, SimAlgorithm, SimContext, SimOptions};

/// Fig. 2: answer, simulation, RIG and enumeration all cohere.
#[test]
fn fig2_full_pipeline() {
    let g = fig2_graph();
    let q = fig2_query();
    let session = Session::with_config(g, GmConfig::exact());
    let prepared = session.prepare(&q).unwrap();
    let (mut tuples, outcome) = prepared.run().collect(100);
    tuples.sort();
    assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]]);
    assert_eq!(outcome.result.count, 2);
    // RIG is a tiny fraction of the already-tiny graph
    assert!(outcome.metrics.rig_stats.size() > 0);
}

/// Table 1's structural claim: forward-only and backward-only simulations
/// are supersets of the double simulation, which is a superset of the
/// occurrence sets.
#[test]
fn table1_simulation_sandwich() {
    let g = fig2_graph();
    let q = fig2_query();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let fb = double_simulation(&ctx, &SimOptions::exact()).fb;
    // occurrence sets from the known answer
    let os = [vec![1u32, 2], vec![3, 5], vec![7, 9]];
    let ms = ctx.match_sets();
    for i in 0..3 {
        for &v in &os[i] {
            assert!(fb[i].contains(v), "os({i}) ⊄ FB({i})");
        }
        assert!(fb[i].is_subset(&ms[i]), "FB({i}) ⊄ ms({i})");
    }
}

/// Fig. 4: the query has an empty answer on G2 and simulation detects it
/// (all candidate sets drain), enabling early termination. Fig. 5: the
/// dag-ordered algorithm needs no more passes than the basic one.
#[test]
fn fig4_fig5_empty_answer_and_convergence() {
    let g = fig4_g2();
    let q = fig2_query();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let bas = double_simulation(
        &ctx,
        &SimOptions { algorithm: SimAlgorithm::Basic, trace: true, ..SimOptions::exact() },
    );
    let dag = double_simulation(
        &ctx,
        &SimOptions { algorithm: SimAlgorithm::Dag, trace: true, ..SimOptions::exact() },
    );
    assert!(bas.fb.iter().all(|s| s.is_empty()));
    assert!(dag.fb.iter().all(|s| s.is_empty()));
    assert!(dag.passes <= bas.passes);
    // both traces prune all 10 nodes exactly once
    assert_eq!(bas.pruned, 10);
    assert_eq!(dag.pruned, 10);
    // the matcher short-circuits to zero without enumeration
    let session = Session::with_config(g, GmConfig::exact());
    let outcome = session.prepare(&q).unwrap().run().count();
    assert_eq!(outcome.result.count, 0);
    assert_eq!(outcome.metrics.rig_stats.node_count, 0);
}

/// Fig. 3: transitive closure / reduction of the A => B => C (+ A => C)
/// pattern.
#[test]
fn fig3_reduction() {
    let mut q = PatternQuery::new(vec![0, 1, 2]);
    q.add_edge(0, 1, EdgeKind::Reachability);
    q.add_edge(1, 2, EdgeKind::Reachability);
    q.add_edge(0, 2, EdgeKind::Reachability);
    let r = transitive_reduction(&q);
    assert_eq!(r.num_edges(), 2);
    // and the reduced query has the same answer on the Fig. 2 graph
    let g = fig2_graph();
    let session = Session::with_config(g, GmConfig { skip_reduction: true, ..GmConfig::exact() });
    let full = session.prepare(&q).unwrap().run().count();
    let red = session.prepare(&r).unwrap().run().count();
    assert_eq!(full.result.count, red.result.count);
}

/// Prop. 4.1 on the running example: every homomorphism's edge images are
/// RIG edges — even in the *match* RIG (the largest valid one).
#[test]
fn prop41_rig_losslessness() {
    use rigmatch::rig::SelectMode;
    let g = fig2_graph();
    let q = fig2_query();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    for select in [SelectMode::MatchSets, SelectMode::PrefilterOnly, SelectMode::SimOnly] {
        let rig = build_rig(&ctx, &bfl, &RigOptions { select, ..RigOptions::exact() });
        // the two known homomorphisms
        for t in [[1u32, 3, 7], [2, 5, 9]] {
            for (eid, e) in q.edges().iter().enumerate() {
                let u = t[e.from as usize];
                let v = t[e.to as usize];
                let succ = rig.successors(eid as u32, u).expect("adjacency present");
                assert!(succ.contains(v), "{select:?}: edge {eid} image ({u},{v}) missing");
            }
        }
    }
}
