//! Property-based recovery invariants for the durability layer (ISSUE 7):
//!
//! * **prefix durability** — for any random transaction stream and any
//!   fault-injected crash point, recovery yields exactly a prefix of the
//!   acknowledged commits, with no partial transaction visible (under
//!   `Durability::Strict` the prefix is the *whole* acked stream);
//! * **no panic, no silent loss** — torn appends, short writes, fsync
//!   failures and bit-flip WAL corruption each end in either a clean
//!   prefix recovery or a typed `Error::Storage`;
//! * **replay ∘ snapshot == in-memory rebuild** — a recovered session
//!   answers queries identically to a session that applied the same
//!   transactions in memory, across `SelectMode × EdgeKind`.
//!
//! All file IO runs through the fault-injecting [`MemBackend`], so every
//! crash point is deterministic and reproducible from the proptest seed.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;
use rigmatch::core::{Durability, Error, ErrorKind, GmConfig, MemBackend, Session, StoreOptions};
use rigmatch::graph::{encode_segment, DataGraph, MutationOp, MutationStream};
use rigmatch::query::{EdgeKind, PatternQuery};
use rigmatch::rig::SelectMode;

const STORE_DIR: &str = "/store";

/// Deterministic base graph: small enough that per-transaction reference
/// materialization stays cheap across a few hundred proptest cases.
fn base_graph(seed: u64) -> DataGraph {
    let g = rigmatch::datasets::erdos_renyi(20, 40, seed);
    rigmatch::datasets::zipf_labels(&g, 3, 1.0, seed)
}

/// Canonical bytes of a graph state: the checksummed segment encoding at a
/// fixed version, so two states are compared byte-for-byte.
fn graph_bytes(g: &DataGraph) -> Vec<u8> {
    encode_segment(g, 0)
}

/// One injected fault, armed relative to the backend's current counters so
/// store creation itself always succeeds.
#[derive(Debug, Clone, Copy)]
enum Fault {
    None,
    /// Fail the (current + delay)-th mutating op outright.
    FailOp {
        delay: u64,
    },
    /// Tear the (current + delay)-th append after `keep` bytes.
    ShortAppend {
        delay: u64,
        keep: usize,
    },
    /// Fail the (current + delay)-th fsync.
    FailSync {
        delay: u64,
    },
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::None),
        (1..40u64).prop_map(|delay| Fault::FailOp { delay }),
        (1..40u64, 0..24usize).prop_map(|(delay, keep)| Fault::ShortAppend { delay, keep }),
        (1..12u64).prop_map(|delay| Fault::FailSync { delay }),
    ]
}

fn durability_strategy() -> impl Strategy<Value = Durability> {
    prop_oneof![Just(Durability::Strict), Just(Durability::Batched), Just(Durability::None),]
}

fn arm(backend: &MemBackend, fault: Fault, wedge: bool) {
    if wedge {
        backend.wedge_after_fault();
    }
    match fault {
        Fault::None => {}
        Fault::FailOp { delay } => backend.fail_op_at(backend.ops() + delay),
        Fault::ShortAppend { delay, keep } => backend.short_append_at(backend.ops() + delay, keep),
        Fault::FailSync { delay } => backend.fail_sync_at(backend.syncs() + delay),
    }
}

/// Drives `txns` transactions into a fresh durable store on `backend`,
/// arming `fault` after creation. Returns the acked versions and the
/// reference segment bytes for every *generated* version (index `v - 1`),
/// acked or not. Stops at the first storage error (which must be typed).
struct Driven {
    acked: Vec<u64>,
    reference: Vec<Vec<u8>>,
}

#[allow(clippy::too_many_arguments)]
fn drive(
    backend: &Arc<MemBackend>,
    dir: &Path,
    seed: u64,
    txns: usize,
    fault: Fault,
    wedge: bool,
    durability: Durability,
    compact_at: Option<usize>,
) -> Result<Driven, TestCaseError> {
    let base = Arc::new(base_graph(seed));
    let opts = StoreOptions { durability, batch_commits: 2 };
    let session = Session::create_at_with(
        dir,
        Arc::clone(&base),
        GmConfig::default(),
        Arc::clone(backend) as Arc<dyn rigmatch::core::StorageBackend>,
        opts,
    )
    .expect("create on a clean backend succeeds");
    arm(backend, fault, wedge);

    let mut stream = MutationStream::new(base, seed);
    let mut acked = Vec::new();
    let mut reference = Vec::new();
    for i in 0..txns {
        let ops = stream.next_txn(4);
        // the stream's mirror already reflects `ops`: this is the state
        // any recovery to version i+1 must reproduce byte-for-byte
        reference.push(graph_bytes(&stream.mirror().materialize()));
        match session.apply(&ops) {
            Ok(summary) => {
                prop_assert_eq!(summary.version, (i + 1) as u64);
                acked.push(summary.version);
            }
            Err(e) => {
                // a failed commit must be a typed storage error, and the
                // run stops here so versions stay contiguous
                prop_assert_eq!(e.kind(), ErrorKind::Storage, "unexpected error: {e}");
                return Ok(Driven { acked, reference });
            }
        }
        if compact_at == Some(i) {
            // may fail against the armed fault; that must never corrupt
            // acknowledged state (checked by the caller's recovery pass)
            let _ = session.compact();
        }
    }
    if let Err(e) = session.flush_wal() {
        prop_assert_eq!(e.kind(), ErrorKind::Storage, "unexpected error: {e}");
    }
    Ok(Driven { acked, reference })
}

/// Recovered state must be a whole-transaction prefix: version `v` implies
/// bytes identical to the reference graph after exactly `v` transactions.
fn assert_prefix(session: &Session, seed: u64, driven: &Driven) -> Result<(), TestCaseError> {
    let report = session.recovery_report().expect("opened session has a report").clone();
    let v = report.recovered_version;
    let expected = if v == 0 {
        graph_bytes(&base_graph(seed))
    } else {
        prop_assert!(
            (v as usize) <= driven.reference.len(),
            "recovered version {} beyond the {} generated transactions",
            v,
            driven.reference.len()
        );
        driven.reference[v as usize - 1].clone()
    };
    let actual = graph_bytes(&session.graph().materialize());
    prop_assert_eq!(
        actual,
        expected,
        "recovered graph at version {} is not the transaction-stream prefix",
        v
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any fault plan × any crash point: after power loss, recovery yields
    /// a clean prefix — all acked commits under `Strict`, at most the
    /// acked commits under `Batched`/`None` — and never panics.
    #[test]
    fn recovery_is_a_prefix_of_acked_commits(
        seed in 0..u64::MAX,
        txns in 1..12usize,
        fault in fault_strategy(),
        wedge in prop::bool::ANY,
        durability in durability_strategy(),
        compact in prop::bool::ANY,
    ) {
        let backend = Arc::new(MemBackend::new());
        let dir = PathBuf::from(STORE_DIR);
        let compact_at = compact.then_some(txns / 2);
        let driven =
            drive(&backend, &dir, seed, txns, fault, wedge, durability, compact_at)?;

        backend.simulate_crash();
        let session = Session::open_with(
            &dir,
            GmConfig::default(),
            Arc::clone(&backend) as Arc<dyn rigmatch::core::StorageBackend>,
            StoreOptions::default(),
        )
        .expect("recovery after power loss succeeds");

        let v = session.recovery_report().unwrap().recovered_version;
        let last_acked = driven.acked.last().copied().unwrap_or(0);
        match durability {
            // an acknowledged commit survives power loss, and nothing
            // unacknowledged can have become durable
            Durability::Strict => prop_assert_eq!(
                v, last_acked,
                "strict: every acked commit is durable, no more, no less"
            ),
            // bounded loss window: never more than what was acked
            Durability::Batched | Durability::None => prop_assert!(
                v <= last_acked,
                "recovered version {} exceeds last acked {}", v, last_acked
            ),
        }
        assert_prefix(&session, seed, &driven)?;
    }

    /// Bit-flip corruption anywhere in the WAL: recovery either stops at
    /// the last valid record (a clean prefix) or reports a typed storage
    /// error — never a panic, never a mangled graph.
    #[test]
    fn wal_bit_flip_recovers_prefix_or_typed_error(
        seed in 0..u64::MAX,
        txns in 1..10usize,
        offset_sel in 0..u64::MAX,
        mask in 1..=255u8,
    ) {
        let backend = Arc::new(MemBackend::new());
        let dir = PathBuf::from(STORE_DIR);
        let driven = drive(
            &backend, &dir, seed, txns, Fault::None, false,
            Durability::Strict, None,
        )?;
        prop_assert_eq!(driven.acked.len(), txns);

        let wal = dir.join("wal.log");
        let len = backend.file(&wal).expect("wal exists").len();
        prop_assert!(len > 0, "strict commits leave a non-empty wal");
        backend.corrupt(&wal, (offset_sel % len as u64) as usize, mask);

        match Session::open_with(
            &dir,
            GmConfig::default(),
            Arc::clone(&backend) as Arc<dyn rigmatch::core::StorageBackend>,
            StoreOptions::default(),
        ) {
            Ok(session) => {
                let v = session.recovery_report().unwrap().recovered_version;
                prop_assert!(
                    v < txns as u64,
                    "a flipped WAL byte must invalidate at least one record"
                );
                assert_prefix(&session, seed, &driven)?;
            }
            Err(e) => {
                prop_assert_eq!(e.kind(), ErrorKind::Storage, "unexpected error: {e}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// WAL-replay ∘ snapshot equals the in-memory rebuild: a recovered
    /// session answers every `SelectMode × EdgeKind` probe with the same
    /// count as a session that applied the identical transactions without
    /// ever touching disk.
    #[test]
    fn recovered_matches_in_memory_rebuild_across_modes(
        seed in 0..u64::MAX,
        txns in 1..8usize,
        compact in prop::bool::ANY,
    ) {
        let backend = Arc::new(MemBackend::new());
        let dir = PathBuf::from(STORE_DIR);
        let base = Arc::new(base_graph(seed));

        let mut stream = MutationStream::new(Arc::clone(&base), seed);
        let recorded: Vec<Vec<MutationOp>> =
            (0..txns).map(|_| stream.next_txn(4)).collect();

        {
            let session = Session::create_at_with(
                &dir,
                Arc::clone(&base),
                GmConfig::default(),
                Arc::clone(&backend) as Arc<dyn rigmatch::core::StorageBackend>,
                StoreOptions::default(),
            )
            .expect("create");
            for (i, ops) in recorded.iter().enumerate() {
                session.apply(ops).expect("clean commit");
                if compact && i == txns / 2 {
                    session.compact();
                }
            }
            session.flush_wal().expect("flush");
        }

        // the in-memory reference: same base, same transactions, no disk
        let reference = Session::new(Arc::clone(&base));
        for ops in &recorded {
            reference.apply(ops).expect("clean commit");
        }

        let kinds = [EdgeKind::Direct, EdgeKind::Reachability];
        let probe = |session: &Session, kind: EdgeKind| -> u64 {
            let mut q = PatternQuery::new(vec![0, 1]);
            q.add_edge(0, 1, kind);
            session.prepare(&q).expect("valid probe").run().count().result.count
        };
        let expected: Vec<u64> = kinds.iter().map(|&k| probe(&reference, k)).collect();

        for select in [
            SelectMode::PrefilterThenSim,
            SelectMode::SimOnly,
            SelectMode::PrefilterOnly,
            SelectMode::MatchSets,
        ] {
            let mut config = GmConfig::default();
            config.rig.select = select;
            let recovered = Session::open_with(
                &dir,
                config,
                Arc::clone(&backend) as Arc<dyn rigmatch::core::StorageBackend>,
                StoreOptions::default(),
            )
            .expect("recovery of a cleanly flushed store succeeds");
            prop_assert_eq!(
                recovered.recovery_report().unwrap().recovered_version,
                txns as u64
            );
            for (i, &kind) in kinds.iter().enumerate() {
                prop_assert_eq!(
                    probe(&recovered, kind),
                    expected[i],
                    "select {:?}, kind {:?}", select, kind
                );
            }
        }
    }
}

/// A session recovered from a crash must also *resume* correctly: new
/// commits continue the version sequence and survive the next crash.
#[test]
fn recovered_session_resumes_committing() {
    let backend = Arc::new(MemBackend::new());
    let dir = PathBuf::from(STORE_DIR);
    let seed = 42;
    let base = Arc::new(base_graph(seed));
    let mut stream = MutationStream::new(Arc::clone(&base), seed);

    let session = Session::create_at_with(
        &dir,
        Arc::clone(&base),
        GmConfig::default(),
        Arc::clone(&backend) as Arc<dyn rigmatch::core::StorageBackend>,
        StoreOptions::default(),
    )
    .expect("create");
    for _ in 0..3 {
        session.apply(&stream.next_txn(4)).expect("commit");
    }
    drop(session);
    backend.simulate_crash();

    let session = Session::open_with(
        &dir,
        GmConfig::default(),
        Arc::clone(&backend) as Arc<dyn rigmatch::core::StorageBackend>,
        StoreOptions::default(),
    )
    .expect("recover");
    assert_eq!(session.recovery_report().unwrap().recovered_version, 3);
    let summary = session.apply(&stream.next_txn(4)).expect("resumed commit");
    assert_eq!(summary.version, 4, "versions continue where recovery left off");
    drop(session);
    backend.simulate_crash();

    let session = Session::open_with(
        &dir,
        GmConfig::default(),
        Arc::clone(&backend) as Arc<dyn rigmatch::core::StorageBackend>,
        StoreOptions::default(),
    )
    .expect("second recovery");
    assert_eq!(session.recovery_report().unwrap().recovered_version, 4);
    assert_eq!(
        graph_bytes(&session.graph().materialize()),
        graph_bytes(&stream.mirror().materialize()),
        "post-recovery commits are as durable as pre-crash ones"
    );
}

/// The storage layer surfaces unrecoverable states as [`Error::Storage`],
/// wired to exit code 7 — the contract the CLI's `recover` subcommand and
/// the bench harness rely on.
#[test]
fn storage_errors_are_typed_and_mapped() {
    let backend = Arc::new(MemBackend::new());
    let err = Session::open_with(
        "/nowhere",
        GmConfig::default(),
        backend as Arc<dyn rigmatch::core::StorageBackend>,
        StoreOptions::default(),
    )
    .expect_err("empty dir holds no store");
    assert_eq!(err.kind(), ErrorKind::Storage);
    assert_eq!(err.kind().exit_code(), 7);
    assert!(matches!(err, Error::Storage(_)));
}
