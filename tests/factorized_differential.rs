//! Factorized-answer differential suite: on random labeled graphs, the
//! counting DP, the (sequential and parallel) tuple-enumeration engine and
//! the RIG-free brute-force oracle must report the **same count** for
//! every query — across every `SelectMode`, Direct/Reachability/mixed edge
//! kinds, injective on/off, thread counts {1, 2, 8}, tree and cyclic query
//! shapes, and on both clean base graphs and dirty delta-overlay
//! snapshots.
//!
//! The DP path is additionally cross-checked at the engine level: its lazy
//! pull-iterator must expand exactly the enumeration engine's match set,
//! and its per-variable cardinalities must equal the distinct binding
//! counts of the enumerated answers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::baselines::brute_force_count;
use rigmatch::core::factorized::Factorization;
use rigmatch::core::{GmConfig, Session};
use rigmatch::graph::{CommitImpact, DeltaOverlay, GraphBuilder, NodeId};
use rigmatch::query::{EdgeKind, PatternQuery};
use rigmatch::reach::BflIndex;
use rigmatch::rig::{build_rig, RigOptions, SelectMode};
use rigmatch::sim::SimContext;

const NUM_LABELS: u32 = 3;
const THREADS: [usize; 3] = [1, 2, 8];

fn random_base(nodes: usize, edges: usize, seed: u64) -> rigmatch::graph::DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for l in 0..NUM_LABELS {
        b.add_node(l); // one guaranteed node per label
    }
    for _ in NUM_LABELS as usize..nodes {
        b.add_node(rng.gen_range(0..NUM_LABELS));
    }
    for _ in 0..edges {
        let u = rng.gen_range(0..nodes) as NodeId;
        let v = rng.gen_range(0..nodes) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Tree shapes (2-chain, 3-chain, out-star) and cyclic shapes (triangle,
/// 4-cycle, diamond-with-chord), each in Direct, Reachability and mixed
/// edge-kind flavors.
fn workload() -> Vec<PatternQuery> {
    let mut out = Vec::new();
    let kinds = [
        [EdgeKind::Direct; 4],
        [EdgeKind::Reachability; 4],
        [EdgeKind::Direct, EdgeKind::Reachability, EdgeKind::Direct, EdgeKind::Reachability],
    ];
    for ks in kinds {
        // 2-chain (tree)
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, ks[0]);
        out.push(q);
        // 3-chain (tree)
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(1, 2, ks[1]);
        out.push(q);
        // out-star (tree)
        let mut q = PatternQuery::new(vec![1, 0, 2]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(0, 2, ks[1]);
        out.push(q);
        // triangle (cyclic)
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(1, 2, ks[1]);
        q.add_edge(0, 2, ks[2]);
        out.push(q);
        // 4-cycle (cyclic)
        let mut q = PatternQuery::new(vec![0, 1, 2, 0]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(1, 2, ks[1]);
        q.add_edge(3, 2, ks[2]);
        q.add_edge(0, 3, ks[3]);
        out.push(q);
        // diamond with chord (cyclic, rank 2)
        let mut q = PatternQuery::new(vec![0, 1, 1, 2]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(0, 2, ks[1]);
        q.add_edge(1, 3, ks[2]);
        q.add_edge(2, 3, ks[3]);
        q.add_edge(0, 3, EdgeKind::Reachability);
        out.push(q);
    }
    out
}

/// The tri-modal agreement check for one session snapshot: for every
/// workload query, DP count == enumerated count (all thread counts) ==
/// brute force, for both homomorphic and injective matching, with the
/// `counted_via_factorization` witness set exactly on the DP path.
fn check_session(session: &Session, g: &rigmatch::graph::DataGraph, ctx_label: &str) {
    for (qi, q) in workload().iter().enumerate() {
        let brute = brute_force_count(g, q, false);
        let brute_inj = brute_force_count(g, q, true);
        let p = session.prepare(q).expect("workload validates");

        // DP path (default count: no limit/timeout, not injective)
        let dp = p.run().count();
        assert_eq!(dp.result.count, brute, "{ctx_label}: DP vs brute, query {qi}");
        let empty = p.run().explain().empty_answer;
        assert_eq!(
            dp.metrics.counted_via_factorization, !empty,
            "{ctx_label}: witness flag, query {qi}"
        );

        for &t in &THREADS {
            // forced enumeration path
            let en = p.run().force_enumerate().threads(t).count();
            assert!(!en.metrics.counted_via_factorization);
            assert_eq!(en.result.count, brute, "{ctx_label}: enum vs brute, query {qi} t={t}");
            // injective runs are DP-ineligible and must agree with the
            // injective oracle
            let inj = p.run().injective(true).threads(t).count();
            assert!(!inj.metrics.counted_via_factorization);
            assert_eq!(
                inj.result.count, brute_inj,
                "{ctx_label}: injective vs brute, query {qi} t={t}"
            );
        }
    }
}

/// Clean-base check plus the engine-level lazy-iterator cross-check.
fn check_clean(select: SelectMode, seed: u64) {
    let cfg = GmConfig { rig: RigOptions { select, ..RigOptions::exact() }, ..GmConfig::default() };
    let g = random_base(20, 50, seed);
    let session = Session::with_config(g.clone(), cfg);
    check_session(&session, &g, &format!("clean select={select:?} seed={seed}"));

    // Engine-level: lazy expansion produces exactly the enumerated match
    // set, and var cardinalities equal the distinct enumerated bindings.
    let opts = RigOptions { select, ..RigOptions::exact() };
    let bfl = BflIndex::new(&g);
    for (qi, q) in workload().iter().enumerate() {
        let ctx = SimContext::new(&g, q, &bfl);
        let rig = build_rig(&ctx, &bfl, &opts);
        if rig.is_empty() {
            continue;
        }
        let (mut expect, _) = rigmatch::mjoin::collect(q, &rig, &Default::default(), usize::MAX);
        expect.sort();
        let mut f = Factorization::new(q, &rig);
        let mut got: Vec<_> = f.tuples().collect();
        got.sort();
        assert_eq!(got, expect, "lazy iterator, query {qi} seed={seed}");
        assert_eq!(f.count().total, Some(expect.len() as u128));
        assert_eq!(f.exists(), !expect.is_empty());
        let cards = f.var_cardinalities();
        for qn in 0..q.num_nodes() {
            let mut vals: Vec<_> = expect.iter().map(|t| t[qn]).collect();
            vals.sort_unstable();
            vals.dedup();
            assert_eq!(cards[qn], vals.len() as u64, "cardinality var {qn} query {qi}");
        }
    }
}

/// Dirty-snapshot check: random committed mutation batches (shared
/// workload generator with `bench_updates`), then the tri-modal agreement
/// against a brute force over the materialized snapshot.
fn check_dirty(select: SelectMode, seed: u64, commits: usize, ops_per_commit: usize) {
    let cfg = GmConfig { rig: RigOptions { select, ..RigOptions::exact() }, ..GmConfig::default() };
    let mut gen_state = seed ^ 0xFAC7;
    let base = random_base(20, 45, seed);
    let session = Session::with_config(base, cfg);
    for step in 0..commits {
        let mut scratch: DeltaOverlay = (**session.graph().delta()).clone();
        let mut txn = session.begin();
        for _ in 0..ops_per_commit {
            if let Some(op) = scratch.random_mutation(&mut gen_state, NUM_LABELS) {
                let mut impact = CommitImpact::default();
                if scratch.apply(&op, &mut impact).is_ok() {
                    txn.push(op);
                }
            }
        }
        session.commit(txn).expect("scratch-validated ops commit cleanly");
        let materialized = session.graph().materialize();
        check_session(
            &session,
            &materialized,
            &format!("dirty select={select:?} seed={seed} step={step}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Refined (prefilter + simulation) RIGs: DP == enumerate == brute on
    /// clean bases, plus the engine-level iterator cross-check.
    #[test]
    fn refined_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::PrefilterThenSim, seed);
    }

    /// Simulation-only ablation.
    #[test]
    fn sim_only_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::SimOnly, seed);
    }

    /// Prefilter-only ablation.
    #[test]
    fn prefilter_only_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::PrefilterOnly, seed);
    }

    /// Raw match-set RIGs (largest valid RIG — most conditioning work).
    #[test]
    fn match_sets_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::MatchSets, seed);
    }

    /// Dirty snapshots under the refined mode: the DP runs against the
    /// delta-overlay RIG and must agree with a brute force over the
    /// materialized snapshot.
    #[test]
    fn refined_dirty_agrees(seed in 0u64..1_000_000) {
        check_dirty(SelectMode::PrefilterThenSim, seed, 2, 6);
    }

    /// Dirty snapshots under match-set RIGs.
    #[test]
    fn match_sets_dirty_agrees(seed in 0u64..1_000_000) {
        check_dirty(SelectMode::MatchSets, seed, 2, 6);
    }
}

/// Deterministic spot check: the DP handles an overflow-scale count by
/// falling back to enumeration only when the total exceeds u64 — here we
/// just assert a dense homomorphic pattern's DP count fits and agrees.
#[test]
fn dense_homomorphic_pattern_agrees() {
    let mut b = GraphBuilder::new();
    for _ in 0..30 {
        b.add_node(0);
    }
    for u in 0..30u32 {
        for v in 0..30u32 {
            if u != v && (u + v) % 3 == 0 {
                b.add_edge(u, v);
            }
        }
    }
    let g = b.build();
    let mut q = PatternQuery::new(vec![0, 0, 0, 0]);
    q.add_edge(0, 1, EdgeKind::Direct);
    q.add_edge(1, 2, EdgeKind::Direct);
    q.add_edge(2, 3, EdgeKind::Direct);
    let brute = brute_force_count(&g, &q, false);
    let session = Session::new(g);
    let p = session.prepare(&q).unwrap();
    let dp = p.run().count();
    assert!(dp.metrics.counted_via_factorization);
    assert_eq!(dp.result.count, brute);
    assert!(brute > 10_000, "pattern should be dense (got {brute})");
}
