//! Update-vs-rebuild differential suite: random interleavings of node/edge
//! inserts, deletes and compactions, executed through the delta overlay,
//! must produce **byte-identical match sets** to a from-scratch rebuild
//! (fresh CSR base + fresh BFL on the materialized snapshot), across every
//! `SelectMode`, both `EdgeKind`s, and thread counts {1, 2, 8}.
//!
//! On top of match-set equality, every checked snapshot also exercises the
//! `count()` terminal — which auto-routes to the factorized counting DP on
//! dirty snapshots — asserting it agrees with the match-set size and with
//! the RIG-free brute-force oracle over the materialized snapshot.
//!
//! Mutations are generated *at runtime* against the live snapshot (ids and
//! edges depend on earlier commits) by the shared
//! `DeltaOverlay::random_mutation` workload generator (also used by the
//! `bench_updates` harness), driven by a proptest-supplied seed so every
//! failure replays deterministically.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::core::{CompactionPolicy, GmConfig, Session};
use rigmatch::graph::{CommitImpact, DeltaOverlay, GraphBuilder, NodeId};
use rigmatch::query::{EdgeKind, PatternQuery};
use rigmatch::rig::{RigOptions, SelectMode};

const NUM_LABELS: u32 = 3;
const THREADS: [usize; 3] = [1, 2, 8];

/// A random labeled base graph with every label populated (so the fixed
/// query workload always validates).
fn random_base(nodes: usize, edges: usize, seed: u64) -> rigmatch::graph::DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for l in 0..NUM_LABELS {
        b.add_node(l); // one guaranteed node per label
    }
    for _ in NUM_LABELS as usize..nodes {
        b.add_node(rng.gen_range(0..NUM_LABELS));
    }
    for _ in 0..edges {
        let u = rng.gen_range(0..nodes) as NodeId;
        let v = rng.gen_range(0..nodes) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The query workload: 2-chains and a triangle-ish 3-pattern in direct,
/// reachability and mixed flavors.
fn workload() -> Vec<PatternQuery> {
    let mut out = Vec::new();
    for kind in [EdgeKind::Direct, EdgeKind::Reachability] {
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, kind);
        out.push(q);
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, kind);
        q.add_edge(1, 2, kind);
        out.push(q);
    }
    // mixed: direct into reachability with a closing reachability chord
    let mut q = PatternQuery::new(vec![0, 1, 2]);
    q.add_edge(0, 1, EdgeKind::Direct);
    q.add_edge(1, 2, EdgeKind::Reachability);
    q.add_edge(0, 2, EdgeKind::Reachability);
    out.push(q);
    out
}

/// Sorted match set of `q` on `session` at `threads` workers.
fn matches(session: &Session, q: &PatternQuery, threads: usize) -> Vec<Vec<NodeId>> {
    let p = session.prepare(q).expect("workload validates");
    let (mut tuples, outcome) = p.run().threads(threads).collect_all();
    assert!(!outcome.result.timed_out && !outcome.result.limit_hit);
    tuples.sort();
    tuples
}

/// The heart of the suite: drive `commits` random transactions through
/// `session`, and after every commit compare the overlay's match sets
/// against a from-scratch rebuild of the materialized snapshot — for every
/// workload query, at every thread count.
fn drive_and_check(select: SelectMode, seed: u64, commits: usize, ops_per_commit: usize) {
    let cfg = GmConfig { rig: RigOptions { select, ..RigOptions::exact() }, ..GmConfig::default() };
    let mut gen_state = seed ^ 0xD1FF;
    let base = random_base(24, 60, seed);
    let session = Session::with_config(base, cfg).with_compaction(CompactionPolicy::disabled());
    let queries = workload();
    for step in 0..commits {
        // Stage ops on the txn while mirroring them on a scratch overlay:
        // the scratch validates each op against the graph *as mutated so
        // far in this txn* (an earlier staged remove may have killed an
        // endpoint), so the commit below is guaranteed to apply cleanly.
        let mut scratch: DeltaOverlay = (**session.graph().delta()).clone();
        let mut txn = session.begin();
        for _ in 0..ops_per_commit {
            if let Some(op) = scratch.random_mutation(&mut gen_state, NUM_LABELS) {
                let mut impact = CommitImpact::default();
                if scratch.apply(&op, &mut impact).is_ok() {
                    txn.push(op);
                }
            }
        }
        let summary = session.commit(txn).expect("scratch-validated ops commit cleanly");
        // occasionally fold the delta into a fresh base mid-stream
        if step % 3 == 2 {
            session.compact();
            assert_eq!(session.graph().delta().ops(), 0);
        }
        let materialized = session.graph().materialize();
        let rebuilt = Session::with_config(materialized.clone(), cfg);
        for (qi, q) in queries.iter().enumerate() {
            let expect = matches(&rebuilt, q, 1);
            for &t in &THREADS {
                let got = matches(&session, q, t);
                assert_eq!(
                    got, expect,
                    "select={select:?} seed={seed} step={step} (v{}) query={qi} threads={t}",
                    summary.version
                );
            }
            // the count() terminal rides the factorized DP on the dirty
            // snapshot — it must agree with the match set and the oracle
            let brute = rigmatch::baselines::brute_force_count(&materialized, q, false);
            assert_eq!(brute, expect.len() as u64, "oracle vs rebuild, query {qi}");
            let p = session.prepare(q).expect("workload validates");
            let o = p.run().count();
            assert_eq!(
                o.result.count, brute,
                "select={select:?} seed={seed} step={step} query={qi}: DP count on dirty snapshot"
            );
            let empty = p.run().explain().empty_answer;
            assert_eq!(o.metrics.counted_via_factorization, !empty, "witness flag, query {qi}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Refined (prefilter + simulation) RIGs over the overlay equal a
    /// from-scratch rebuild after arbitrary committed mutation sequences.
    #[test]
    fn refined_select_matches_rebuild(seed in 0u64..1_000_000) {
        drive_and_check(SelectMode::PrefilterThenSim, seed, 3, 6);
    }

    /// Same property for the simulation-only ablation.
    #[test]
    fn sim_only_matches_rebuild(seed in 0u64..1_000_000) {
        drive_and_check(SelectMode::SimOnly, seed, 3, 6);
    }

    /// Same property for the prefilter-only ablation.
    #[test]
    fn prefilter_only_matches_rebuild(seed in 0u64..1_000_000) {
        drive_and_check(SelectMode::PrefilterOnly, seed, 3, 6);
    }

    /// Same property for raw match-set RIGs (the largest valid RIG).
    #[test]
    fn match_sets_matches_rebuild(seed in 0u64..1_000_000) {
        drive_and_check(SelectMode::MatchSets, seed, 2, 6);
    }
}

/// Deterministic end-to-end scenario: interleaved inserts/deletes with an
/// automatic compaction in the middle, checked against rebuilds at every
/// commit — the documented example of `docs/updates.md`.
#[test]
fn scripted_interleaving_with_auto_compaction() {
    let base = random_base(20, 45, 7);
    let session = Session::new(base).with_compaction(CompactionPolicy { min_ops: 8, ratio: 0.0 });
    let queries = workload();
    let script =
        ["a v 0\na e 20 0\na e 1 20\n", "d e 1 20\nd v 0\n", "a v 2\na e 20 21\ncommit\nd v 20\n"];
    for text in script {
        for ops in rigmatch::graph::parse_mutations(text).unwrap() {
            session.apply(&ops).unwrap();
            let rebuilt = Session::new(session.graph().materialize());
            for q in &queries {
                assert_eq!(matches(&session, q, 1), matches(&rebuilt, q, 1));
                assert_eq!(matches(&session, q, 8), matches(&rebuilt, q, 1));
            }
        }
    }
    assert!(session.store_stats().compactions >= 1, "threshold must have tripped");
}

/// The acceptance-criteria cache test at the integration level: a commit
/// touching label X invalidates plans reading X and leaves plans over
/// disjoint labels cached, witnessed by `CacheStats` hit counters.
#[test]
fn commit_invalidation_is_label_aware() {
    let mut b = GraphBuilder::new();
    let a0 = b.add_named_node("A");
    let b0 = b.add_named_node("B");
    let x0 = b.add_named_node("X");
    let y0 = b.add_named_node("Y");
    b.add_edge(a0, b0);
    b.add_edge(x0, y0);
    let session = Session::new(b.build());

    let ab = session.prepare("MATCH (a:A)->(b:B)").unwrap();
    let xy = session.prepare("MATCH (x:X)->(y:Y)").unwrap();
    ab.run().count();
    xy.run().count();
    let baseline = session.cache_stats();
    assert_eq!(baseline.entries, 2);

    // commit touching X and Y only
    let mut txn = session.begin();
    let x1 = txn.add_named_node("X");
    txn.add_edge(x1, y0);
    let summary = session.commit(txn).unwrap();
    assert_eq!(summary.plans_invalidated, 1, "only the X,Y plan reads touched labels");
    assert_eq!(summary.plans_retained, 1);

    let o = ab.run().count();
    assert!(o.metrics.rig_from_cache, "A,B plan must still be cached");
    assert_eq!(session.cache_stats().hits, baseline.hits + 1);
    let o = xy.run().count();
    assert!(!o.metrics.rig_from_cache, "X,Y plan must have been invalidated");
    assert_eq!(o.result.count, 2, "and its rebuild sees the new edge");
    assert_eq!(session.cache_stats().invalidated, 1);
}
