//! Property-based tests (proptest) for the core invariants:
//!
//! * the simulation sandwich `os(q) ⊆ FB(q) ⊆ ms(q)` (§4.2);
//! * RIG losslessness (Prop. 4.1);
//! * MJoin == brute-force homomorphism count;
//! * the AGM / worst-case-optimality bound of Thm. 5.2 for integral edge
//!   covers;
//! * transitive reduction preserves answers (§3, query equivalence).

use proptest::prelude::*;
use rigmatch::core::{GmConfig, Session};
use rigmatch::graph::{DataGraph, GraphBuilder, NodeId};
use rigmatch::query::{transitive_reduction, EdgeKind, PatternQuery};
use rigmatch::reach::{BflIndex, Reachability};

const NUM_LABELS: u32 = 3;

/// Strategy: a random labeled graph with up to 12 nodes / 24 edges.
fn graph_strategy() -> impl Strategy<Value = DataGraph> {
    (
        prop::collection::vec(0..NUM_LABELS, 3..12),
        prop::collection::vec((0..12u32, 0..12u32), 0..24),
    )
        .prop_map(|(labels, edges)| {
            let n = labels.len() as u32;
            let mut b = GraphBuilder::new();
            for l in labels {
                b.add_node(l);
            }
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
}

/// Strategy: a connected pattern of 2–4 nodes with mixed edge kinds.
fn query_strategy() -> impl Strategy<Value = PatternQuery> {
    (
        prop::collection::vec(0..NUM_LABELS, 2..5),
        prop::collection::vec((0..5u32, 0..5u32, prop::bool::ANY), 0..4),
        prop::collection::vec(prop::bool::ANY, 4),
    )
        .prop_map(|(labels, extra, chain_kinds)| {
            let n = labels.len() as u32;
            let mut q = PatternQuery::new(labels);
            for i in 1..n {
                let kind = if chain_kinds[(i as usize - 1) % 4] {
                    EdgeKind::Direct
                } else {
                    EdgeKind::Reachability
                };
                q.add_edge(i - 1, i, kind);
            }
            for (a, b, dir) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    let kind = if dir { EdgeKind::Direct } else { EdgeKind::Reachability };
                    q.ensure_edge(a, b, kind);
                }
            }
            q
        })
}

/// Brute-force homomorphism enumeration (ground truth).
fn brute_force(g: &DataGraph, q: &PatternQuery) -> Vec<Vec<NodeId>> {
    let bfl = BflIndex::new(g);
    let n = q.num_nodes();
    let mut out = Vec::new();
    let mut assign = vec![0 as NodeId; n];
    fn rec(
        d: usize,
        g: &DataGraph,
        q: &PatternQuery,
        bfl: &BflIndex,
        assign: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if d == q.num_nodes() {
            out.push(assign.clone());
            return;
        }
        for v in 0..g.num_nodes() as NodeId {
            if g.label(v) != q.label(d as u32) {
                continue;
            }
            assign[d] = v;
            let ok = q.edges().iter().all(|e| {
                let (f, t) = (e.from as usize, e.to as usize);
                if f > d || t > d {
                    return true;
                }
                match e.kind {
                    EdgeKind::Direct => g.has_edge(assign[f], assign[t]),
                    EdgeKind::Reachability => bfl.reaches(assign[f], assign[t]),
                }
            });
            if ok {
                rec(d + 1, g, q, bfl, assign, out);
            }
        }
    }
    rec(0, g, q, &bfl, &mut assign, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MJoin's answer equals brute force, and FB sandwiches os/ms.
    #[test]
    fn gm_equals_brute_force(g in graph_strategy(), q in query_strategy()) {
        let truth = brute_force(&g, &q);
        let session = Session::with_config(g.clone(), GmConfig::exact());
        match session.prepare(&q) {
            // random labels can fall outside the random graph's label
            // space; prepare rejects those, whose answer is empty
            Err(_) => prop_assert!(truth.is_empty(), "rejected query had answers"),
            Ok(prepared) => {
                let (mut tuples, outcome) = prepared.run().collect_all();
                prop_assert_eq!(outcome.result.count as usize, truth.len());
                let mut expect = truth.clone();
                expect.sort();
                tuples.sort();
                prop_assert_eq!(tuples, expect);
            }
        }
    }

    /// The simulation sandwich: every occurrence column is inside FB, and
    /// FB is inside the match set.
    #[test]
    fn simulation_sandwich(g in graph_strategy(), q in query_strategy()) {
        use rigmatch::sim::{double_simulation, SimContext, SimOptions};
        let truth = brute_force(&g, &q);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let ms = ctx.match_sets();
        let fb = double_simulation(&ctx, &SimOptions::exact()).fb;
        for i in 0..q.num_nodes() {
            prop_assert!(fb[i].is_subset(&ms[i]));
            for t in &truth {
                prop_assert!(fb[i].contains(t[i]), "occurrence outside FB");
            }
        }
    }

    /// Prop. 4.1: the refined RIG contains the image of every
    /// homomorphism edge.
    #[test]
    fn rig_lossless(g in graph_strategy(), q in query_strategy()) {
        use rigmatch::rig::{build_rig, RigOptions};
        use rigmatch::sim::SimContext;
        let truth = brute_force(&g, &q);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        for t in &truth {
            for (eid, e) in q.edges().iter().enumerate() {
                let u = t[e.from as usize];
                let v = t[e.to as usize];
                let succ = rig.successors(eid as u32, u);
                prop_assert!(
                    succ.is_some_and(|s| s.contains(v)),
                    "edge {} image ({}, {}) missing from RIG", eid, u, v
                );
            }
        }
    }

    /// Thm. 5.2's bound instantiated with integral edge covers: the output
    /// size never exceeds the product of RIG edge-relation sizes over any
    /// edge subset covering all query nodes.
    #[test]
    fn agm_bound_integral_covers(g in graph_strategy(), q in query_strategy()) {
        use rigmatch::rig::{build_rig, RigOptions};
        use rigmatch::sim::SimContext;
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let session = Session::with_config(g.clone(), GmConfig::exact());
        // out-of-label-space queries are rejected by prepare; their answer
        // is empty and trivially satisfies every bound
        let count = match session.prepare(&q) {
            Ok(p) => p.run().count().result.count,
            Err(_) => 0,
        };
        let m = q.num_edges();
        // enumerate all edge subsets (m ≤ ~7 here); those covering all
        // nodes give valid integral covers
        let mut best: Option<u64> = None;
        for mask in 1u32..(1 << m) {
            let mut covered = vec![false; q.num_nodes()];
            let mut product: u64 = 1;
            for (eid, e) in q.edges().iter().enumerate() {
                if mask & (1 << eid) != 0 {
                    covered[e.from as usize] = true;
                    covered[e.to as usize] = true;
                    product = product.saturating_mul(rig.edge_cardinality(eid as u32));
                }
            }
            if covered.iter().all(|&c| c) {
                best = Some(best.map_or(product, |b: u64| b.min(product)));
            }
        }
        if let Some(bound) = best {
            prop_assert!(count <= bound, "count {} exceeds AGM bound {}", count, bound);
        }
    }

    /// §3: transitive reduction yields an equivalent query.
    #[test]
    fn reduction_preserves_answers(g in graph_strategy(), q in query_strategy()) {
        let r = transitive_reduction(&q);
        prop_assert!(r.num_edges() <= q.num_edges());
        let a = brute_force(&g, &q).len();
        let b = brute_force(&g, &r).len();
        prop_assert_eq!(a, b, "reduction changed the answer");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Prop. 4.1, end to end: a RIG is lossless under *every* node-selection
    /// mode, so MJoin's occurrence count over each variant's RIG equals the
    /// naive brute-force homomorphism count.
    #[test]
    fn mjoin_over_rig_counts_equal_brute_force_all_select_modes(
        g in graph_strategy(),
        q in query_strategy(),
    ) {
        use rigmatch::mjoin::{count, EnumOptions};
        use rigmatch::rig::{build_rig, RigOptions, SelectMode};
        use rigmatch::sim::SimContext;

        let truth = brute_force(&g, &q).len() as u64;
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        for mode in [
            SelectMode::PrefilterThenSim,
            SelectMode::SimOnly,
            SelectMode::PrefilterOnly,
            SelectMode::MatchSets,
        ] {
            let rig = build_rig(&ctx, &bfl, &RigOptions { select: mode, ..RigOptions::exact() });
            let res = count(&q, &rig, &EnumOptions::default());
            prop_assert_eq!(res.count, truth, "select mode {:?}", mode);
            prop_assert!(!res.timed_out);
            prop_assert!(!res.limit_hit);
        }
    }
}
