//! Deterministic "shape" assertions behind the paper's headline claims —
//! structural metrics (intermediate tuples, RIG sizes, pass counts), not
//! wall-clock times, so they are stable under CI noise.

use rigmatch::baselines::{Budget, Engine, GmEngine, Jm, Tm};
use rigmatch::core::{GmConfig, Session};
use rigmatch::datasets::spec;
use rigmatch::query::{template, transitive_reduction, Flavor};
use rigmatch::rig::SelectMode;

fn em_fragment(seed: u64) -> rigmatch::graph::DataGraph {
    let s = spec("em").unwrap();
    s.generate(2_000.0 / s.nodes as f64, seed)
}

/// §5.1: MJoin materializes nothing; JM's intermediates exceed its output;
/// TM examines at least as many tree tuples as it reports answers.
#[test]
fn intermediate_result_hierarchy() {
    let g = em_fragment(3);
    let budget = Budget::unlimited();
    let gm = GmEngine::new(g.clone());
    let jm = Jm::new(&g);
    let tm = Tm::new(&g);
    let mut checked = 0;
    for id in [3usize, 6, 8, 15] {
        let q = template(id).instantiate_modulo(Flavor::H, g.num_labels());
        let rg = gm.evaluate(&q, &budget);
        let rj = jm.evaluate(&q, &budget);
        let rt = tm.evaluate(&q, &budget);
        assert_eq!(rg.intermediate_tuples, 0, "HQ{id}");
        assert!(rj.intermediate_tuples >= rj.occurrences, "HQ{id}");
        assert!(rt.intermediate_tuples >= rt.occurrences, "HQ{id}");
        if rg.occurrences > 0 {
            checked += 1;
        }
    }
    assert!(checked > 0, "workload must have non-empty queries");
}

/// Fig. 13's size ordering: refined RIG (double simulation) never exceeds
/// the prefilter-only RIG, which never exceeds the match RIG.
#[test]
fn rig_size_ordering() {
    let g = em_fragment(5);
    let bfl = rigmatch::reach::BflIndex::new(&g);
    for id in [2usize, 6, 10, 11] {
        let q = template(id).instantiate_modulo(Flavor::H, g.num_labels());
        let size = |select| {
            let opts = rigmatch::rig::RigOptions { select, ..rigmatch::rig::RigOptions::exact() };
            let ctx = rigmatch::sim::SimContext::new(&g, &q, &bfl);
            rigmatch::rig::build_rig(&ctx, &bfl, &opts).stats.size()
        };
        let refined = size(SelectMode::PrefilterThenSim);
        let sim_only = size(SelectMode::SimOnly);
        let pf_only = size(SelectMode::PrefilterOnly);
        let match_rig = size(SelectMode::MatchSets);
        assert!(refined <= pf_only, "HQ{id}: refined {refined} > prefilter {pf_only}");
        assert!(sim_only <= pf_only, "HQ{id}");
        assert!(pf_only <= match_rig, "HQ{id}: prefilter {pf_only} > match {match_rig}");
    }
}

/// §3: transitive reduction removes reachability edges from D-flavor
/// clique/combo templates (the Fig. 15 workload) and never changes counts.
#[test]
fn reduction_effect_on_d_templates() {
    let g = em_fragment(7);
    let strict = Session::with_config(g.clone(), GmConfig::exact());
    let lax =
        Session::with_config(g.clone(), GmConfig { skip_reduction: true, ..GmConfig::exact() });
    let mut total_removed = 0;
    for id in [12usize, 15, 18] {
        let q = template(id).instantiate_modulo(Flavor::D, g.num_labels());
        let r = transitive_reduction(&q);
        total_removed += q.num_edges() - r.num_edges();
        let with = strict.prepare(&q).unwrap().run().limit(50_000).count();
        let without = lax.prepare(&q).unwrap().run().limit(50_000).count();
        assert_eq!(with.result.count, without.result.count, "DQ{id}");
    }
    assert!(total_removed >= 3, "cliques in D flavor must shed transitive edges");
}

/// §4.4 / Fig. 5: on tree queries, the dag-ordered simulation stabilizes
/// in at most two passes ([59]'s single-pass property plus the final
/// no-change pass).
#[test]
fn tree_queries_converge_fast() {
    use rigmatch::reach::BflIndex;
    use rigmatch::sim::{double_simulation, SimAlgorithm, SimContext, SimOptions};
    let g = em_fragment(11);
    let bfl = BflIndex::new(&g);
    for id in [1usize, 2, 4] {
        let q = template(id).instantiate_modulo(Flavor::H, g.num_labels());
        assert_eq!(q.cycle_rank(), 0, "HQ{id} must be a tree");
        let ctx = SimContext::new(&g, &q, &bfl);
        let r = double_simulation(
            &ctx,
            &SimOptions { algorithm: SimAlgorithm::Dag, ..SimOptions::exact() },
        );
        assert!(r.passes <= 2, "HQ{id}: tree took {} passes", r.passes);
    }
}

/// Facade-level parallel enumeration equals sequential (§6 future work).
#[test]
fn par_count_matches_sequential() {
    let g = em_fragment(13);
    let session = Session::with_config(g.clone(), GmConfig::exact());
    for id in [3usize, 6, 8] {
        let q = template(id).instantiate_modulo(Flavor::H, g.num_labels());
        let p = session.prepare(&q).unwrap();
        let seq = p.run().count();
        for threads in [2usize, 4] {
            let par = p.run().threads(threads).count();
            assert_eq!(par.result.count, seq.result.count, "HQ{id} threads={threads}");
        }
    }
}

/// The Budget→failure machinery: a one-tuple intermediate budget forces JM
/// into OM on any non-trivial query while GM is unaffected (Tables 3/5).
#[test]
fn om_model_only_hits_materializing_engines() {
    use rigmatch::core::RunStatus;
    let g = em_fragment(17);
    let tight = Budget { max_intermediate: Some(1), ..Budget::unlimited() };
    let gm = GmEngine::new(g.clone());
    let jm = Jm::new(&g);
    let q = template(3).instantiate_modulo(Flavor::H, g.num_labels());
    let rg = gm.evaluate(&q, &tight);
    let rj = jm.evaluate(&q, &tight);
    assert_eq!(rg.status, RunStatus::Completed);
    if rj.occurrences > 0 || rj.intermediate_tuples > 1 {
        assert_eq!(rj.status, RunStatus::MemoryExceeded);
    }
}
