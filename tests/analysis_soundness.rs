//! Static-analysis soundness suite: whenever the analyzer *proves* a
//! query empty (codes E101/E102/E103), the engine must report count 0 —
//! through both the factorized-DP count path and forced tuple
//! enumeration — across the `SelectMode` matrix, all three template
//! flavors (Direct / hybrid / Reachability edges), and on both clean
//! base graphs and dirty delta-overlay snapshots.
//!
//! The contrapositive is covered by the same assertion: a satisfiable
//! query (the engine finds a match) can never carry an emptiness proof.
//! The deterministic tests pin both directions down so the property
//! tests cannot pass vacuously.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::core::{GmConfig, Session};
use rigmatch::graph::{CommitImpact, DeltaOverlay, GraphBuilder, NodeId};
use rigmatch::query::{template, template_count, EdgeKind, Flavor, PatternQuery};
use rigmatch::rig::{RigOptions, SelectMode};

const NUM_LABELS: u32 = 3;

fn random_base(nodes: usize, edges: usize, seed: u64) -> rigmatch::graph::DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for l in 0..NUM_LABELS {
        b.add_node(l); // one guaranteed node per label
    }
    for _ in NUM_LABELS as usize..nodes {
        b.add_node(rng.gen_range(0..NUM_LABELS));
    }
    for _ in 0..edges {
        let u = rng.gen_range(0..nodes) as NodeId;
        let v = rng.gen_range(0..nodes) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Every Fig. 7 template in every flavor, labels drawn at random from
/// the graph's label space — some instances are satisfiable, others are
/// provably empty, and the check needs both sides of the line.
fn workload(seed: u64) -> Vec<PatternQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for id in 0..template_count() {
        let t = template(id);
        for flavor in [Flavor::C, Flavor::H, Flavor::D] {
            let labels: Vec<u32> = (0..t.num_nodes).map(|_| rng.gen_range(0..NUM_LABELS)).collect();
            out.push(t.instantiate(flavor, &labels));
        }
    }
    out
}

/// The soundness invariant for one session snapshot: each proven-empty
/// query must count 0 through the DP path and through forced
/// enumeration. Returns how many proofs were exercised so callers can
/// assert non-vacuity.
fn check_soundness(session: &Session, ctx: &str, seed: u64) -> usize {
    let mut proven = 0;
    for (qi, q) in workload(seed).iter().enumerate() {
        let report = session.analyze_pattern(q);
        if !report.proven_empty() {
            continue;
        }
        proven += 1;
        let p = session.prepare(q).expect("workload labels are in range");
        let dp = p.run().count();
        assert_eq!(
            dp.result.count,
            0,
            "{ctx}: query {qi} proven empty but the DP counted {}\n{}",
            dp.result.count,
            report.render_compact()
        );
        let en = p.run().force_enumerate().count();
        assert_eq!(
            en.result.count,
            0,
            "{ctx}: query {qi} proven empty but enumeration found {}\n{}",
            en.result.count,
            report.render_compact()
        );
    }
    proven
}

fn check_clean(select: SelectMode, seed: u64) {
    let cfg = GmConfig { rig: RigOptions { select, ..RigOptions::exact() }, ..GmConfig::default() };
    let session = Session::with_config(random_base(20, 50, seed), cfg);
    check_soundness(&session, &format!("clean select={select:?} seed={seed}"), seed);
}

/// Random committed mutation batches, then the soundness check against
/// the dirty overlay snapshot (the analyzer's pair counts and
/// reachability oracle both read through the delta).
fn check_dirty(select: SelectMode, seed: u64, commits: usize, ops_per_commit: usize) {
    let cfg = GmConfig { rig: RigOptions { select, ..RigOptions::exact() }, ..GmConfig::default() };
    let mut gen_state = seed ^ 0xA11A;
    let session = Session::with_config(random_base(20, 45, seed), cfg);
    for step in 0..commits {
        let mut scratch: DeltaOverlay = (**session.graph().delta()).clone();
        let mut txn = session.begin();
        for _ in 0..ops_per_commit {
            if let Some(op) = scratch.random_mutation(&mut gen_state, NUM_LABELS) {
                let mut impact = CommitImpact::default();
                if scratch.apply(&op, &mut impact).is_ok() {
                    txn.push(op);
                }
            }
        }
        session.commit(txn).expect("scratch-validated ops commit cleanly");
        check_soundness(
            &session,
            &format!("dirty select={select:?} seed={seed} step={step}"),
            seed,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Refined (prefilter + simulation) RIGs on clean bases.
    #[test]
    fn refined_clean_is_sound(seed in 0u64..1_000_000) {
        check_clean(SelectMode::PrefilterThenSim, seed);
    }

    /// Simulation-only ablation.
    #[test]
    fn sim_only_clean_is_sound(seed in 0u64..1_000_000) {
        check_clean(SelectMode::SimOnly, seed);
    }

    /// Prefilter-only ablation.
    #[test]
    fn prefilter_only_clean_is_sound(seed in 0u64..1_000_000) {
        check_clean(SelectMode::PrefilterOnly, seed);
    }

    /// Raw match-set RIGs.
    #[test]
    fn match_sets_clean_is_sound(seed in 0u64..1_000_000) {
        check_clean(SelectMode::MatchSets, seed);
    }

    /// Dirty overlay snapshots under the refined mode.
    #[test]
    fn refined_dirty_is_sound(seed in 0u64..1_000_000) {
        check_dirty(SelectMode::PrefilterThenSim, seed, 2, 6);
    }

    /// Dirty overlay snapshots under match-set RIGs.
    #[test]
    fn match_sets_dirty_is_sound(seed in 0u64..1_000_000) {
        check_dirty(SelectMode::MatchSets, seed, 2, 6);
    }
}

/// Non-vacuity anchor: on a graph whose only edges run Author → Paper →
/// Paper, the reversed direct edge (E102) and reversed reachability
/// edge (E103) are both provably empty, and the engine agrees in every
/// select mode. Deleting the Author's edge then shifts the proofs under
/// a dirty snapshot.
#[test]
fn emptiness_proofs_fire_and_the_engine_agrees() {
    let mut b = GraphBuilder::new();
    b.add_node(0); // Author
    b.add_node(1); // Paper
    b.add_node(1); // Paper
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    let g = b.build();

    let mut reversed_direct = PatternQuery::new(vec![1, 0]);
    reversed_direct.add_edge(0, 1, EdgeKind::Direct);
    let mut reversed_reach = PatternQuery::new(vec![1, 0]);
    reversed_reach.add_edge(0, 1, EdgeKind::Reachability);
    let mut forward = PatternQuery::new(vec![0, 1]);
    forward.add_edge(0, 1, EdgeKind::Direct);

    for select in [
        SelectMode::PrefilterThenSim,
        SelectMode::SimOnly,
        SelectMode::PrefilterOnly,
        SelectMode::MatchSets,
    ] {
        let cfg =
            GmConfig { rig: RigOptions { select, ..RigOptions::exact() }, ..GmConfig::default() };
        let session = Session::with_config(g.clone(), cfg);
        for q in [&reversed_direct, &reversed_reach] {
            let report = session.analyze_pattern(q);
            assert!(report.proven_empty(), "select={select:?}:\n{}", report.render_compact());
            let p = session.prepare(q).expect("labels are in range");
            assert_eq!(p.run().count().result.count, 0, "select={select:?}");
            assert_eq!(p.run().force_enumerate().count().result.count, 0, "select={select:?}");
        }
        // the satisfiable direction carries no proof
        assert!(!session.analyze_pattern(&forward).proven_empty());

        // dirty snapshot: delete 0->1, the forward edge becomes provable
        let mut txn = session.begin();
        txn.push(rigmatch::graph::MutationOp::RemoveEdge(0, 1));
        session.commit(txn).expect("edge exists");
        let report = session.analyze_pattern(&forward);
        assert!(report.proven_empty(), "select={select:?}:\n{}", report.render_compact());
        let p = session.prepare(&forward).expect("labels are in range");
        assert_eq!(p.run().count().result.count, 0, "select={select:?} dirty");
    }
}

/// Completeness anchor on the paper's workload: every Fig. 9 template
/// instance the engine can satisfy (a match exists on a generated
/// citation-style base) must come back *without* an emptiness proof.
#[test]
fn satisfiable_fig9_templates_are_never_flagged() {
    let g = random_base(60, 240, 11);
    let session = Session::new(g);
    let mut satisfiable = 0;
    for id in 0..template_count() {
        for flavor in [Flavor::C, Flavor::H, Flavor::D] {
            let q = template(id).instantiate_modulo(flavor, NUM_LABELS as usize);
            let p = session.prepare(&q).expect("modulo labels are in range");
            if p.run().limit(1).count().result.count == 0 {
                continue;
            }
            satisfiable += 1;
            let report = session.analyze_pattern(&q);
            assert!(
                !report.proven_empty(),
                "template {id} flavor {flavor:?} has matches but was proven empty:\n{}",
                report.render_compact()
            );
        }
    }
    assert!(satisfiable >= 20, "only {satisfiable} satisfiable instances — base too sparse");
}
