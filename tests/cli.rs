//! End-to-end tests of the `rigmatch` CLI binary.

use std::io::Write;
use std::process::Command;

fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rigmatch-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const GRAPH: &str = "v 0 0\nv 1 1\nv 2 1\nv 3 2\ne 0 1\ne 0 2\ne 1 3\n";
const QUERY: &str = "n 0 0\nn 1 1\nn 2 2\nd 0 1\nr 1 2\n";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rigmatch"))
}

#[test]
fn gm_prints_tuples() {
    let g = write_tmp("g1.txt", GRAPH);
    let q = write_tmp("q1.txt", QUERY);
    let out = bin().arg(&g).arg(&q).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim(), "0 1 3");
}

#[test]
fn all_engines_agree_on_count() {
    let g = write_tmp("g2.txt", GRAPH);
    let q = write_tmp("q2.txt", QUERY);
    for engine in ["gm", "jm", "tm", "neo"] {
        let out = bin().arg(&g).arg(&q).args(["--count", "--engine", engine]).output().unwrap();
        assert!(out.status.success(), "{engine}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert_eq!(stdout.trim(), "1", "{engine}");
    }
}

#[test]
fn stats_flag_reports_rig() {
    let g = write_tmp("g3.txt", GRAPH);
    let q = write_tmp("q3.txt", QUERY);
    let out = bin().arg(&g).arg(&q).args(["--count", "--stats"]).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("RIG:"), "{stderr}");
    assert!(stderr.contains("sim passes"), "{stderr}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let g = write_tmp("g4.txt", "v 0 0\nv 2 0\n"); // non-dense ids
    let q = write_tmp("q4.txt", QUERY);
    let out = bin().arg(&g).arg(&q).output().unwrap();
    assert!(!out.status.success());
    let missing = bin().arg("/nonexistent").arg(&q).output().unwrap();
    assert!(!missing.status.success());
    let unknown_engine = bin().arg(&g).arg(&q).args(["--engine", "magic"]).output().unwrap();
    assert!(!unknown_engine.status.success());
}

#[test]
fn parallel_flags_stream_and_count() {
    let g = write_tmp("g6.txt", GRAPH);
    let q = write_tmp("q6.txt", QUERY);
    // parallel counting (morsel engine + parallel RIG build)
    let out = bin().arg(&g).arg(&q).args(["--count", "--threads", "4"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1");
    // parallel streaming enumeration (batched sinks under a stdout lock)
    let out = bin().arg(&g).arg(&q).args(["--threads", "4"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "0 1 3");
    // parallel counting with a limit — no sequential fallback, exact cap
    let out =
        bin().arg(&g).arg(&q).args(["--count", "--threads", "4", "--limit", "1"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1");
}

#[test]
fn limit_and_order_flags() {
    let g = write_tmp("g5.txt", GRAPH);
    let q = write_tmp("q5.txt", QUERY);
    for order in ["jo", "ri", "bj"] {
        let out = bin()
            .arg(&g)
            .arg(&q)
            .args(["--count", "--order", order, "--limit", "1"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{order}");
        assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1", "{order}");
    }
}
