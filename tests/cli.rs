//! End-to-end tests of the `rigmatch` CLI binary.

use std::io::Write;
use std::process::Command;

fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rigmatch-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const GRAPH: &str =
    "l 0 Author\nl 1 Paper\nl 2 Cited\nv 0 0\nv 1 1\nv 2 1\nv 3 2\ne 0 1\ne 0 2\ne 1 3\n";
const QUERY: &str = "n 0 0\nn 1 1\nn 2 2\nd 0 1\nr 1 2\n";
const HPQL: &str = "MATCH (a:Author)->(p:Paper)=>(c:Cited)";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rigmatch"))
}

#[test]
fn gm_prints_tuples() {
    let g = write_tmp("g1.txt", GRAPH);
    let q = write_tmp("q1.txt", QUERY);
    let out = bin().arg(&g).arg(&q).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim(), "0 1 3");
}

#[test]
fn all_engines_agree_on_count() {
    let g = write_tmp("g2.txt", GRAPH);
    let q = write_tmp("q2.txt", QUERY);
    for engine in ["gm", "jm", "tm", "neo"] {
        let out = bin().arg(&g).arg(&q).args(["--count", "--engine", engine]).output().unwrap();
        assert!(out.status.success(), "{engine}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert_eq!(stdout.trim(), "1", "{engine}");
    }
}

#[test]
fn stats_flag_reports_rig() {
    let g = write_tmp("g3.txt", GRAPH);
    let q = write_tmp("q3.txt", QUERY);
    let out = bin().arg(&g).arg(&q).args(["--count", "--stats"]).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("RIG:"), "{stderr}");
    assert!(stderr.contains("sim passes"), "{stderr}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let g = write_tmp("g4.txt", "v 0 0\nv 2 0\n"); // non-dense ids
    let q = write_tmp("q4.txt", QUERY);
    let out = bin().arg(&g).arg(&q).output().unwrap();
    assert!(!out.status.success());
    let missing = bin().arg("/nonexistent").arg(&q).output().unwrap();
    assert!(!missing.status.success());
    let unknown_engine = bin().arg(&g).arg(&q).args(["--engine", "magic"]).output().unwrap();
    assert!(!unknown_engine.status.success());
}

#[test]
fn parallel_flags_stream_and_count() {
    let g = write_tmp("g6.txt", GRAPH);
    let q = write_tmp("q6.txt", QUERY);
    // parallel counting (morsel engine + parallel RIG build)
    let out = bin().arg(&g).arg(&q).args(["--count", "--threads", "4"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1");
    // parallel streaming enumeration (batched sinks under a stdout lock)
    let out = bin().arg(&g).arg(&q).args(["--threads", "4"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "0 1 3");
    // parallel counting with a limit — no sequential fallback, exact cap
    let out =
        bin().arg(&g).arg(&q).args(["--count", "--threads", "4", "--limit", "1"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1");
}

#[test]
fn hpql_query_files_are_autodetected() {
    let g = write_tmp("g7.txt", GRAPH);
    let q = write_tmp("q7.hpql", "# citation pattern\nMATCH (a:Author)->(p:Paper)=>(c:Cited)\n");
    let out = bin().arg(&g).arg(&q).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "0 1 3");
}

#[test]
fn inline_query_flag() {
    let g = write_tmp("g8.txt", GRAPH);
    // named labels via the graph's dictionary
    let out = bin().arg(&g).args(["--query", HPQL, "--count"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1");
    // numeric labels always work
    let out =
        bin().arg(&g).args(["--query", "MATCH (a:0)->(p:1)=>(c:2)", "--count"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1");
    // baselines accept HPQL too
    for engine in ["jm", "tm", "neo"] {
        let out = bin().arg(&g).args(["--query", HPQL, "--engine", engine]).output().unwrap();
        assert!(out.status.success(), "{engine}: {out:?}");
        assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1", "{engine}");
    }
}

#[test]
fn explain_mode_prints_the_plan() {
    let g = write_tmp("g9.txt", GRAPH);
    let redundant = "MATCH (a:Author)->(p:Paper)=>(c:Cited), (a)=>(c)";
    let out = bin().arg("explain").arg(&g).args(["--query", redundant]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("reduced:"), "{stdout}");
    assert!(stdout.contains("1 edge(s) removed"), "{stdout}");
    assert!(stdout.contains("RIG:"), "{stdout}");
    assert!(stdout.contains("order:"), "{stdout}");
    assert!(stdout.contains("a → p → c") || stdout.contains("order"), "{stdout}");
}

#[test]
fn distinct_exit_codes() {
    let g = write_tmp("g10.txt", GRAPH);
    let code = |out: &std::process::Output| out.status.code().unwrap();
    // usage = 2
    let out = bin().output().unwrap();
    assert_eq!(code(&out), 2);
    // parse = 3 (bad HPQL, bad legacy query file, unknown label name)
    let out = bin().arg(&g).args(["--query", "MATCH (a:Author"]).output().unwrap();
    assert_eq!(code(&out), 3, "{out:?}");
    let bad_q = write_tmp("q10.txt", "n 0 0\nd 0 9\n");
    let out = bin().arg(&g).arg(&bad_q).output().unwrap();
    assert_eq!(code(&out), 3, "{out:?}");
    let out = bin().arg(&g).args(["--query", "MATCH (a:Ghost)->(p:Paper)"]).output().unwrap();
    assert_eq!(code(&out), 3, "{out:?}");
    // io = 4
    let out = bin().arg("/nonexistent-graph").args(["--query", HPQL]).output().unwrap();
    assert_eq!(code(&out), 4, "{out:?}");
    // validation = 5 (disconnected query)
    let disconnected = write_tmp("q11.txt", "n 0 0\nn 1 1\nn 2 2\nd 0 1\n");
    let out = bin().arg(&g).arg(&disconnected).output().unwrap();
    assert_eq!(code(&out), 5, "{out:?}");
    // budget = 6 only under --strict; without it truncation still exits 0
    let args = ["--query", HPQL, "--count", "--limit", "0"];
    let out = bin().arg(&g).args(args).output().unwrap();
    assert_eq!(code(&out), 0, "{out:?}");
    let out = bin().arg(&g).args(args).arg("--strict").output().unwrap();
    assert_eq!(code(&out), 6, "{out:?}");
}

/// `rigmatch check` lints without executing: one test per pass family
/// (A resolution, E emptiness, R redundancy, C cost), plus the exit-code
/// contract — 0 clean/advisory, 8 on analysis errors, 3 on parse errors.
#[test]
fn check_subcommand_covers_every_pass_family() {
    let g = write_tmp("g12.txt", GRAPH);
    let code = |out: &std::process::Output| out.status.code().unwrap();
    // A001: unknown label with a did-you-mean suggestion (exit 8)
    let out = bin()
        .arg("check")
        .arg(&g)
        .args(["--query", "MATCH (a:Athor)->(p:Paper)"])
        .output()
        .unwrap();
    assert_eq!(code(&out), 8, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[A001]"), "{stdout}");
    assert!(stdout.contains("did you mean 'Author'?"), "{stdout}");
    // E102: provably empty direct edge, caret-underlined span (exit 8)
    let out = bin()
        .arg("check")
        .arg(&g)
        .args(["--query", "MATCH (p:Paper)->(a:Author)"])
        .output()
        .unwrap();
    assert_eq!(code(&out), 8, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[E102]"), "{stdout}");
    assert!(stdout.contains("--> query:1:"), "{stdout}");
    assert!(stdout.contains("^^"), "{stdout}");
    // R201: a reach edge the transitive reduction removes — advisory only
    let redundant = "MATCH (a:Author)->(p:Paper)=>(c:Cited), (a)=>(c)";
    let out = bin().arg("check").arg(&g).args(["--query", redundant]).output().unwrap();
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning[R201]"), "{stdout}");
    // C301: cost estimates ride along on a clean query, still exit 0
    let out = bin().arg("check").arg(&g).args(["--query", HPQL]).output().unwrap();
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("note[C301]"), "{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    // parse failures keep the ordinary parse exit code
    let out = bin().arg("check").arg(&g).args(["--query", "MATCH (broken"]).output().unwrap();
    assert_eq!(code(&out), 3, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[P001]"), "{stdout}");
}

#[test]
fn check_emits_the_analysis_json_schema() {
    let g = write_tmp("g13.txt", GRAPH);
    let out = bin()
        .arg("check")
        .arg(&g)
        .args(["--query", "MATCH (p:Paper)->(a:Author)", "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 8, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"analysis\": true"), "{stdout}");
    assert!(stdout.contains("\"proven_empty\": true"), "{stdout}");
    assert!(stdout.contains("\"code\": \"E102\""), "{stdout}");
    assert!(stdout.contains("\"errors\": 1"), "{stdout}");
    // legacy query files analyze too; with no HPQL text the query is null
    let q = write_tmp("q13.txt", QUERY);
    let out = bin().arg("check").arg(&g).arg(&q).args(["--format", "json"]).output().unwrap();
    assert_eq!(out.status.code().unwrap(), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"query\": null"), "{stdout}");
}

/// `check --mutations` analyzes through the delta overlay: deleting both
/// Author→Paper edges flips the forward query from clean to provably
/// empty without touching the base file.
#[test]
fn check_reads_through_the_delta_overlay() {
    let g = write_tmp("g14.txt", GRAPH);
    let fwd = ["--query", "MATCH (a:Author)->(p:Paper)"];
    let out = bin().arg("check").arg(&g).args(fwd).output().unwrap();
    assert_eq!(out.status.code().unwrap(), 0, "{out:?}");
    let m = write_tmp("m14.txt", "d e 0 1\nd e 0 2\n");
    let out = bin()
        .arg("check")
        .arg(&g)
        .args(fwd)
        .args(["--mutations", m.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 8, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[E102]"), "{stdout}");
}

/// `--lint` gates ordinary query runs: strict refuses proven-empty
/// queries with exit 8, warn reports on stderr but still executes.
#[test]
fn lint_modes_gate_query_execution() {
    let g = write_tmp("g15.txt", GRAPH);
    let empty = ["--query", "MATCH (p:Paper)->(a:Author)", "--count"];
    let out = bin().arg(&g).args(empty).args(["--lint", "strict"]).output().unwrap();
    assert_eq!(out.status.code().unwrap(), 8, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("rejected by static analysis"), "{stderr}");
    // warn mode: diagnostics on stderr, the (empty) count still runs
    let out = bin().arg(&g).args(empty).args(["--lint", "warn"]).output().unwrap();
    assert_eq!(out.status.code().unwrap(), 0, "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "0");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("[E102]"), "{stderr}");
    // a clean query passes strict untouched
    let out =
        bin().arg(&g).args(["--query", HPQL, "--count", "--lint", "strict"]).output().unwrap();
    assert_eq!(out.status.code().unwrap(), 0, "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1");
}

#[test]
fn explain_appends_diagnostics() {
    let g = write_tmp("g16.txt", GRAPH);
    let redundant = "MATCH (a:Author)->(p:Paper)=>(c:Cited), (a)=>(c)";
    let out = bin().arg("explain").arg(&g).args(["--query", redundant]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("diagnostics:"), "{stdout}");
    assert!(stdout.contains("warning[R201]"), "{stdout}");
}

#[test]
fn limit_and_order_flags() {
    let g = write_tmp("g5.txt", GRAPH);
    let q = write_tmp("q5.txt", QUERY);
    for order in ["jo", "ri", "bj"] {
        let out = bin()
            .arg(&g)
            .arg(&q)
            .args(["--count", "--order", order, "--limit", "1"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{order}");
        assert_eq!(String::from_utf8(out.stdout).unwrap().trim(), "1", "{order}");
    }
}
