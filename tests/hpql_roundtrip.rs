//! HPQL round-trip property: for any pattern, `parse(to_hpql(q))` yields
//! the same canonical query (modulo node renumbering, which the printed
//! variable names make explicit — node ids follow first appearance in the
//! text, so the test maps them back through the `v<i>` names).

use proptest::prelude::*;
use rigmatch::query::{parse_hpql, to_hpql, EdgeKind, PatternQuery, QNode};

const NUM_LABELS: u32 = 4;

/// Strategy: a connected pattern of 1–6 nodes, mixed edge kinds, with
/// extra chords (including parallel direct+reachability pairs).
fn query_strategy() -> impl Strategy<Value = PatternQuery> {
    (
        prop::collection::vec(0..NUM_LABELS, 1..7),
        prop::collection::vec((0..7u32, 0..7u32, prop::bool::ANY), 0..8),
        prop::collection::vec(prop::bool::ANY, 6),
    )
        .prop_map(|(labels, extra, chain_kinds)| {
            let n = labels.len() as u32;
            let mut q = PatternQuery::new(labels);
            for i in 1..n {
                let kind = if chain_kinds[(i as usize - 1) % 6] {
                    EdgeKind::Direct
                } else {
                    EdgeKind::Reachability
                };
                q.add_edge(i - 1, i, kind);
            }
            for (a, b, dir) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    let kind = if dir { EdgeKind::Direct } else { EdgeKind::Reachability };
                    q.ensure_edge(a, b, kind);
                }
            }
            q
        })
}

/// Renumbers `parsed` back into the original node order using the printed
/// `v<i>` variable names, then compares canonical forms.
fn assert_round_trips(q: &PatternQuery, text: &str) {
    let ast = parse_hpql(text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
    let (resolved, _names) = ast.resolve_interned().expect("numeric labels resolve");
    let parsed = resolved.query;
    assert_eq!(parsed.num_nodes(), q.num_nodes(), "{text}");
    // orig_of[j] = original node id of parsed node j (from its var name)
    let orig_of: Vec<QNode> = resolved
        .vars
        .iter()
        .map(|v| v.strip_prefix('v').and_then(|s| s.parse().ok()).expect("printer names are v<i>"))
        .collect();
    let mut renumbered = PatternQuery::new(
        (0..q.num_nodes())
            .map(|i| {
                let j = orig_of.iter().position(|&o| o == i as QNode).expect("var for every node");
                parsed.label(j as QNode)
            })
            .collect(),
    );
    for e in parsed.edges() {
        renumbered.add_edge(orig_of[e.from as usize], orig_of[e.to as usize], e.kind);
    }
    assert_eq!(renumbered.canonical(), q.canonical(), "{text}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// parse ∘ pretty-print = identity on canonical queries.
    #[test]
    fn parse_print_parse_is_identity(q in query_strategy()) {
        let text = to_hpql(&q, None, |_| None);
        assert_round_trips(&q, text.as_str());
    }

    /// The same property with named labels: printing resolves ids to
    /// names, re-parsing resolves names back to the same ids.
    #[test]
    fn round_trip_with_label_names(q in query_strategy()) {
        let names = ["Alpha", "Beta", "Gamma", "Delta"];
        let text = to_hpql(&q, None, |l| Some(names[l as usize].to_string()));
        let ast = parse_hpql(&text).unwrap();
        let resolved = ast
            .resolve(|n| names.iter().position(|x| *x == n).map(|i| i as u32))
            .unwrap();
        let orig_of: Vec<QNode> = resolved
            .vars
            .iter()
            .map(|v| v.strip_prefix('v').and_then(|s| s.parse().ok()).unwrap())
            .collect();
        let mut renumbered = PatternQuery::new(
            (0..q.num_nodes())
                .map(|i| {
                    let j = orig_of.iter().position(|&o| o == i as QNode).unwrap();
                    resolved.query.label(j as QNode)
                })
                .collect(),
        );
        for e in resolved.query.edges() {
            renumbered.add_edge(orig_of[e.from as usize], orig_of[e.to as usize], e.kind);
        }
        prop_assert_eq!(renumbered.canonical(), q.canonical(), "{}", text);
    }

    /// Printing the canonical form and the raw form parse to the same
    /// canonical query (printer output is insertion-order independent at
    /// the semantic level).
    #[test]
    fn canonical_and_raw_print_equivalently(q in query_strategy()) {
        let a = to_hpql(&q, None, |_| None);
        let b = to_hpql(&q.canonical(), None, |_| None);
        assert_round_trips(&q, a.as_str());
        assert_round_trips(&q, b.as_str());
    }
}
