//! Sharded-execution differential suite: on random labeled graphs, a
//! session running sharded scatter-gather (every shard count in
//! {1, 2, 4, 8} under both hash and range partitioning) must produce the
//! **byte-identical sorted match set** and the **same count** as the
//! plain single-graph engine — across every `SelectMode`,
//! Direct/Reachability/mixed edge kinds, injective on/off, and on both
//! clean base graphs and dirty delta-overlay snapshots.
//!
//! The single-graph side answers counts through the factorized DP where
//! eligible, so count agreement here also pins the sharded enumerator
//! against the DP. A deterministic line-graph case makes every edge a
//! cut edge under range partitioning, forcing boundary-straddling
//! matches through the cross-shard task exchange.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::core::{GmConfig, Session};
use rigmatch::graph::{CommitImpact, DeltaOverlay, GraphBuilder, MutationOp, NodeId};
use rigmatch::prelude::ShardOptions;
use rigmatch::query::{EdgeKind, PatternQuery};
use rigmatch::rig::{RigOptions, SelectMode};

const NUM_LABELS: u32 = 3;
const SHARDS: [usize; 4] = [1, 2, 4, 8];

fn random_base(nodes: usize, edges: usize, seed: u64) -> rigmatch::graph::DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for l in 0..NUM_LABELS {
        b.add_node(l); // one guaranteed node per label
    }
    for _ in NUM_LABELS as usize..nodes {
        b.add_node(rng.gen_range(0..NUM_LABELS));
    }
    for _ in 0..edges {
        let u = rng.gen_range(0..nodes) as NodeId;
        let v = rng.gen_range(0..nodes) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Tree shapes (2-chain, 3-chain, out-star) and a cyclic shape
/// (triangle), each in Direct, Reachability and mixed edge-kind flavors.
/// Chains of length ≥ 2 straddle shard boundaries under range
/// partitioning on these small graphs.
fn workload() -> Vec<PatternQuery> {
    let mut out = Vec::new();
    let kinds = [
        [EdgeKind::Direct; 3],
        [EdgeKind::Reachability; 3],
        [EdgeKind::Direct, EdgeKind::Reachability, EdgeKind::Direct],
    ];
    for ks in kinds {
        // 2-chain (tree)
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, ks[0]);
        out.push(q);
        // 3-chain (tree)
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(1, 2, ks[1]);
        out.push(q);
        // out-star (tree)
        let mut q = PatternQuery::new(vec![1, 0, 2]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(0, 2, ks[1]);
        out.push(q);
        // triangle (cyclic)
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, ks[0]);
        q.add_edge(1, 2, ks[1]);
        q.add_edge(0, 2, ks[2]);
        out.push(q);
    }
    out
}

/// Every sharding configuration the suite exercises.
fn shard_configs() -> Vec<ShardOptions> {
    SHARDS.iter().flat_map(|&n| [ShardOptions::hash(n), ShardOptions::range(n)]).collect()
}

/// One snapshot's agreement check. `baseline` never shards; `sharded` is
/// reconfigured through `set_sharding` for every (shards, partitioner)
/// pair. Both sessions must sit on identical snapshots.
fn check_agreement(baseline: &Session, sharded: &Session, ctx: &str) {
    let queries = workload();
    // baseline expectations, computed once per snapshot
    let mut expected = Vec::with_capacity(queries.len());
    for (qi, q) in queries.iter().enumerate() {
        let p = baseline.prepare(q).expect("workload validates");
        let (mut expect, outcome) = p.run().collect_all();
        assert!(!outcome.result.timed_out && !outcome.result.limit_hit);
        expect.sort();
        // the DP-eligible count path must agree with its own enumeration
        let dp = p.run().count().result.count;
        assert_eq!(dp, expect.len() as u64, "{ctx}: baseline DP vs enum, query {qi}");
        let inj = p.run().injective(true).count().result.count;
        expected.push((expect, dp, inj));
    }

    for opts in shard_configs() {
        sharded.set_sharding(opts);
        for (qi, q) in queries.iter().enumerate() {
            let (expect, dp, inj) = &expected[qi];
            let ps = sharded.prepare(q).expect("workload validates");
            let (got, outcome) = ps.run().collect_all();
            // sharded collect returns globally sorted tuples already;
            // byte-identical means no re-sort should be needed
            assert!(got.windows(2).all(|w| w[0] <= w[1]), "{ctx}: unsorted gather, query {qi}");
            assert_eq!(&got, expect, "{ctx}: match set, query {qi}, {opts:?}");
            assert_eq!(outcome.result.count, expect.len() as u64);
            assert_eq!(
                ps.run().count().result.count,
                *dp,
                "{ctx}: sharded count vs DP, query {qi}, {opts:?}"
            );
            assert_eq!(
                ps.run().injective(true).count().result.count,
                *inj,
                "{ctx}: injective, query {qi}, {opts:?}"
            );
        }
    }
}

fn config_for(select: SelectMode) -> GmConfig {
    GmConfig { rig: RigOptions { select, ..RigOptions::exact() }, ..GmConfig::default() }
}

/// Clean-base check: two sessions on the same graph, one sharded.
fn check_clean(select: SelectMode, seed: u64) {
    let cfg = config_for(select);
    let g = random_base(20, 50, seed);
    let baseline = Session::with_config(g.clone(), cfg);
    let sharded = Session::with_config(g, cfg);
    check_agreement(&baseline, &sharded, &format!("clean select={select:?} seed={seed}"));
}

/// Dirty-snapshot check: identical random mutation batches are committed
/// to both sessions, so the sharded store's routed refresh path (edge
/// ops) and wholesale reset path (node/label ops) both face a moving
/// snapshot while the baseline rebuilds from scratch.
fn check_dirty(select: SelectMode, seed: u64, commits: usize, ops_per_commit: usize) {
    let cfg = config_for(select);
    let mut gen_state = seed ^ 0x5AAD;
    let base = random_base(20, 45, seed);
    let baseline = Session::with_config(base.clone(), cfg);
    let sharded = Session::with_config(base, cfg);
    for step in 0..commits {
        let mut scratch: DeltaOverlay = (**baseline.graph().delta()).clone();
        let mut ops: Vec<MutationOp> = Vec::new();
        for _ in 0..ops_per_commit {
            if let Some(op) = scratch.random_mutation(&mut gen_state, NUM_LABELS) {
                let mut impact = CommitImpact::default();
                if scratch.apply(&op, &mut impact).is_ok() {
                    ops.push(op);
                }
            }
        }
        let mut txn = baseline.begin();
        let mut txn_sh = sharded.begin();
        for op in &ops {
            txn.push(op.clone());
            txn_sh.push(op.clone());
        }
        baseline.commit(txn).expect("scratch-validated ops commit cleanly");
        sharded.commit(txn_sh).expect("scratch-validated ops commit cleanly");
        check_agreement(
            &baseline,
            &sharded,
            &format!("dirty select={select:?} seed={seed} step={step}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Refined (prefilter + simulation) single-graph baseline vs the
    /// sharded engine on clean bases.
    #[test]
    fn refined_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::PrefilterThenSim, seed);
    }

    /// Simulation-only ablation.
    #[test]
    fn sim_only_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::SimOnly, seed);
    }

    /// Prefilter-only ablation.
    #[test]
    fn prefilter_only_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::PrefilterOnly, seed);
    }

    /// Raw match-set RIGs — the same candidate discipline the sharded
    /// planner uses, so the two sides build comparable structures.
    #[test]
    fn match_sets_clean_agrees(seed in 0u64..1_000_000) {
        check_clean(SelectMode::MatchSets, seed);
    }

    /// Dirty snapshots under the refined mode: routed per-shard refresh
    /// and wholesale resets must track the baseline's rebuilds exactly.
    #[test]
    fn refined_dirty_agrees(seed in 0u64..1_000_000) {
        check_dirty(SelectMode::PrefilterThenSim, seed, 2, 6);
    }

    /// Dirty snapshots under match-set RIGs.
    #[test]
    fn match_sets_dirty_agrees(seed in 0u64..1_000_000) {
        check_dirty(SelectMode::MatchSets, seed, 2, 6);
    }
}

/// Deterministic boundary-straddling case: a labeled line graph under
/// range partitioning, where every consecutive pair of nodes lands in
/// different shards at `shards == nodes / 2` — so every match of the
/// 3-chain crosses at least one shard boundary and must flow through the
/// cross-shard task exchange (and, for the reachability flavor, through
/// the cut-edge closure).
#[test]
fn line_graph_straddles_every_range_boundary() {
    let n = 12u32;
    let mut b = GraphBuilder::new();
    for v in 0..n {
        b.add_node(v % NUM_LABELS); // labels 0,1,2,0,1,2,…
    }
    for v in 1..n {
        b.add_edge(v - 1, v);
    }
    let g = b.build();
    let baseline = Session::new(g.clone());
    let sharded = Session::new(g);
    check_agreement(&baseline, &sharded, "line graph");

    // spot-check the shard shape: range(6) on 12 nodes puts 2 nodes per
    // shard, so the line edges 1->2, 3->4, 5->6, 7->8 and 9->10 all
    // cross a boundary
    sharded.set_sharding(ShardOptions::range(6));
    let mut q = PatternQuery::new(vec![0, 1, 2]);
    q.add_edge(0, 1, EdgeKind::Direct);
    q.add_edge(1, 2, EdgeKind::Direct);
    let p = sharded.prepare(&q).expect("chain validates");
    assert_eq!(p.run().count().result.count, 4); // 0-1-2, 3-4-5, 6-7-8, 9-10-11
    let stats = sharded.sharding_stats().expect("sharding is on");
    assert_eq!(stats.shards, 6);
    assert_eq!(stats.cut_edges, 5);
}
