//! Session plan-cache differential tests: a run served from the cached
//! RIG must produce the byte-identical answer of a cold run, across every
//! SelectMode × EdgeKind flavor; the cache must invalidate on a graph
//! epoch bump; and a query expressed as HPQL text must produce the same
//! match set as the same query built programmatically (the PR's
//! acceptance criterion), with the cache-hit counters proving the reuse.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::core::{GmConfig, Session};
use rigmatch::graph::{DataGraph, GraphBuilder, NodeId};
use rigmatch::query::{EdgeKind, Flavor, PatternQuery};
use rigmatch::rig::{RigOptions, SelectMode};

/// A deterministic random graph with named labels A/B/C.
fn random_graph(nodes: usize, edges: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let names = ["A", "B", "C"];
    for _ in 0..nodes {
        b.add_named_node(names[rng.gen_range(0..names.len())]);
    }
    for _ in 0..edges {
        let u = rng.gen_range(0..nodes) as NodeId;
        let v = rng.gen_range(0..nodes) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// A fixed 4-node query shape (triangle + tail) in the given flavor.
fn shaped_query(flavor: Flavor) -> PatternQuery {
    let kind = |i: usize| match flavor {
        Flavor::C => EdgeKind::Direct,
        Flavor::D => EdgeKind::Reachability,
        Flavor::H => {
            if i.is_multiple_of(2) {
                EdgeKind::Direct
            } else {
                EdgeKind::Reachability
            }
        }
    };
    let mut q = PatternQuery::new(vec![0, 1, 2, 1]);
    q.add_edge(0, 1, kind(0));
    q.add_edge(1, 2, kind(1));
    q.add_edge(0, 2, kind(2));
    q.add_edge(2, 3, kind(3));
    q
}

#[test]
fn cached_run_is_byte_identical_to_cold_across_modes_and_kinds() {
    let g = random_graph(60, 150, 7);
    for select in [
        SelectMode::PrefilterThenSim,
        SelectMode::SimOnly,
        SelectMode::PrefilterOnly,
        SelectMode::MatchSets,
    ] {
        let cfg =
            GmConfig { rig: RigOptions { select, ..RigOptions::default() }, ..Default::default() };
        let session = Session::with_config(g.clone(), cfg);
        for flavor in [Flavor::C, Flavor::H, Flavor::D] {
            let p = session.prepare(shaped_query(flavor)).unwrap();
            let (cold_tuples, cold) = p.run().collect_all();
            assert!(!cold.metrics.rig_from_cache, "{select:?}/{flavor:?}");
            let (warm_tuples, warm) = p.run().collect_all();
            assert!(warm.metrics.rig_from_cache, "{select:?}/{flavor:?}");
            assert_eq!(cold_tuples, warm_tuples, "{select:?}/{flavor:?}");
            assert_eq!(cold.result.count, warm.result.count, "{select:?}/{flavor:?}");
            // the cached RIG is the same object: identical shape stats
            assert_eq!(
                (cold.metrics.rig_stats.node_count, cold.metrics.rig_stats.edge_count),
                (warm.metrics.rig_stats.node_count, warm.metrics.rig_stats.edge_count),
            );
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 3, "{select:?}: one build per flavor");
        assert_eq!(stats.hits, 3, "{select:?}: one hit per flavor");
    }
}

#[test]
fn parallel_and_sequential_share_the_cached_plan() {
    let g = random_graph(80, 220, 11);
    let session = Session::new(g);
    let p = session.prepare(shaped_query(Flavor::H)).unwrap();
    let (mut seq, _) = p.run().collect_all();
    seq.sort();
    for threads in [2usize, 4] {
        let (par, outcome) = p.run().threads(threads).collect_all();
        assert!(outcome.metrics.rig_from_cache, "threads={threads}");
        assert_eq!(par, seq, "threads={threads} (parallel collect is sorted)");
    }
    assert_eq!(session.cache_stats().misses, 1);
}

#[test]
fn epoch_bump_invalidates_the_cache() {
    let g = random_graph(60, 150, 13);
    let mut session = Session::new(g.clone());
    let count_before;
    {
        let p = session.prepare(shaped_query(Flavor::H)).unwrap();
        count_before = p.run().count().result.count;
        assert!(p.run().count().metrics.rig_from_cache);
    }
    assert_eq!(session.cache_stats().hits, 1);

    // identical graph content, new epoch: must rebuild, same answer
    session.replace_graph(g.clone()).unwrap();
    assert_eq!(session.epoch(), 1);
    assert_eq!(session.cache_stats().entries, 0);
    {
        let p = session.prepare(shaped_query(Flavor::H)).unwrap();
        let o = p.run().count();
        assert!(!o.metrics.rig_from_cache, "epoch bump must force a rebuild");
        assert_eq!(o.result.count, count_before);
    }

    // genuinely different graph: the fresh plan serves the new answer
    session.replace_graph(random_graph(60, 150, 14)).unwrap();
    let p = session.prepare(shaped_query(Flavor::H)).unwrap();
    let o = p.run().count();
    assert!(!o.metrics.rig_from_cache);
}

/// The PR's acceptance criterion: one query written as HPQL text and once
/// via the builder API produce identical match sets through `Session`,
/// and the second execution reuses the cached RIG with a measurable skip
/// of the build phase (witnessed by the metrics flag + hit counter).
#[test]
fn hpql_and_builder_produce_identical_match_sets_and_share_the_plan() {
    let g = random_graph(100, 300, 5);
    let session = Session::new(g);

    let text = session.prepare("MATCH (x:A)->(y:B)=>(z:C), (x)=>(z)").unwrap();
    let mut q = PatternQuery::new(vec![
        session.graph().label_id("A").unwrap(),
        session.graph().label_id("B").unwrap(),
        session.graph().label_id("C").unwrap(),
    ]);
    q.add_edge(0, 1, EdgeKind::Direct);
    q.add_edge(1, 2, EdgeKind::Reachability);
    q.add_edge(0, 2, EdgeKind::Reachability);
    let built = session.prepare(q).unwrap();

    let (mut t1, cold) = text.run().collect_all();
    let (mut t2, warm) = built.run().collect_all();
    t1.sort();
    t2.sort();
    assert_eq!(t1, t2, "HPQL and builder answers must coincide");
    // the builder run reused the RIG the HPQL run built
    assert!(!cold.metrics.rig_from_cache);
    assert!(warm.metrics.rig_from_cache);
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
}
