//! Kill-and-recover differential suite (ISSUE 7 acceptance criterion):
//! spawn the `crashwriter` child, `SIGKILL` it at an arbitrary point in
//! its commit stream, recover the store with [`Session::open`], and
//! require the recovered graph — and its query answers — to be
//! byte-identical to a reference store holding exactly the acknowledged
//! commits.
//!
//! The writer prints `ack <version>` after each acknowledged commit, so
//! the parent knows a lower bound on what must survive. Under
//! `Durability::Strict` every acked commit is fsynced before the ack
//! line leaves the child; a `SIGKILL` (unlike power loss) also leaves
//! page-cache writes intact, so for every policy the recovered version
//! is **at least** the last ack the parent read, and the recovered state
//! must equal the deterministic transaction stream replayed to exactly
//! that version — whole transactions only, never a partial one.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use rigmatch::core::Session;
use rigmatch::graph::{encode_segment, DataGraph, MutationStream};
use rigmatch::query::{EdgeKind, PatternQuery};

/// Same base graph as `crashwriter`'s `base_graph` — shared by value (the
/// differential is meaningless unless both sides start identically).
fn base_graph(seed: u64) -> DataGraph {
    let g = rigmatch::datasets::erdos_renyi(120, 360, seed);
    rigmatch::datasets::zipf_labels(&g, 4, 1.0, seed)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rig_kill_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_writer(dir: &PathBuf, seed: u64, durability: &str, commits: u64) -> Child {
    Command::new(env!("CARGO_BIN_EXE_crashwriter"))
        .arg(dir)
        .arg(seed.to_string())
        .arg(durability)
        .arg(commits.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crashwriter")
}

/// Reads ack lines until `kill_after` of them arrived, then `SIGKILL`s the
/// child mid-stream. Returns the acked versions the parent observed.
fn kill_after_acks(child: &mut Child, kill_after: usize) -> Vec<u64> {
    let stdout = child.stdout.take().expect("piped stdout");
    let mut acked = Vec::new();
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read ack line");
        if let Some(v) = line.strip_prefix("ack ") {
            acked.push(v.parse::<u64>().expect("ack version"));
        }
        if acked.len() >= kill_after {
            break;
        }
    }
    // SIGKILL: no destructors, no flush — the on-disk state is whatever
    // the commit protocol had made durable by now
    let _ = child.kill();
    let _ = child.wait();
    acked
}

/// The reference store: the same deterministic stream replayed in memory
/// to exactly `version` transactions.
fn reference_at(seed: u64, version: u64) -> DataGraph {
    let base = Arc::new(base_graph(seed));
    let mut stream = MutationStream::new(base, seed);
    for _ in 0..version {
        stream.next_txn(6);
    }
    stream.mirror().materialize()
}

/// Differential check: recovered graph bytes and query results must equal
/// the reference holding exactly the recovered prefix of the stream.
fn assert_recovered_matches(dir: &PathBuf, seed: u64, min_version: u64) -> u64 {
    let session = Session::open(dir).expect("recovery succeeds");
    let report = session.recovery_report().expect("opened session has a report");
    let v = report.recovered_version;
    assert!(
        v >= min_version,
        "recovered version {v} lost acked commits (parent saw {min_version})"
    );

    let reference = reference_at(seed, v);
    assert_eq!(
        encode_segment(&session.graph().materialize(), v),
        encode_segment(&reference, v),
        "recovered graph differs from the reference at version {v}"
    );

    // query answers, not just storage bytes: counts and full occurrence
    // lists over both edge kinds must agree with a session that never
    // touched disk
    let ref_session = Session::new(reference);
    for kind in [EdgeKind::Direct, EdgeKind::Reachability] {
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, kind);
        let (mut got, got_outcome) =
            session.prepare(&q).expect("probe prepares").run().collect(10_000);
        let (mut want, want_outcome) =
            ref_session.prepare(&q).expect("probe prepares").run().collect(10_000);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "occurrences diverge for {kind:?} at version {v}");
        assert_eq!(got_outcome.result.count, want_outcome.result.count);
    }
    v
}

#[test]
fn sigkill_mid_commit_stream_recovers_exactly_the_acked_prefix() {
    // several kill points across the stream, including the very first ack
    for (seed, kill_after) in [(7u64, 1usize), (11, 4), (23, 9)] {
        let dir = scratch_dir(&format!("strict_{seed}"));
        let mut child = spawn_writer(&dir, seed, "strict", 200);
        let acked = kill_after_acks(&mut child, kill_after);
        assert!(!acked.is_empty(), "writer produced no acks before the kill");
        let last_acked = *acked.last().unwrap();

        let v = assert_recovered_matches(&dir, seed, last_acked);
        assert!(v >= kill_after as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sigkill_under_batched_durability_still_recovers_a_clean_prefix() {
    let seed = 31;
    let dir = scratch_dir("batched");
    let mut child = spawn_writer(&dir, seed, "batched", 200);
    let acked = kill_after_acks(&mut child, 6);
    // SIGKILL leaves the page cache intact, so even the batched policy
    // loses nothing here; the differential still pins the exact prefix
    let v = assert_recovered_matches(&dir, seed, *acked.last().unwrap());
    assert!(v >= 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uninterrupted_writer_recovers_every_commit() {
    let seed = 5;
    let commits = 12;
    let dir = scratch_dir("clean");
    let mut child = spawn_writer(&dir, seed, "strict", commits);
    let stdout = child.stdout.take().expect("piped stdout");
    let lines: Vec<String> = BufReader::new(stdout).lines().map(|l| l.expect("line")).collect();
    assert!(child.wait().expect("wait").success());
    assert_eq!(lines.last().map(String::as_str), Some("done"));
    assert_eq!(lines.len() as u64, commits + 1);

    let v = assert_recovered_matches(&dir, seed, commits);
    assert_eq!(v, commits, "a clean shutdown loses nothing and invents nothing");
    let _ = std::fs::remove_dir_all(&dir);
}
