//! Cross-engine agreement: GM, JM, TM, Neo4j-like (and where applicable
//! GF/EH/RM/ISO) must produce identical occurrence counts on identical
//! workloads — the fundamental correctness property behind every
//! comparison table in §7.

use rigmatch::baselines::{Budget, EhLike, Engine, GfLike, GmEngine, Jm, NeoLike, RmLike, Tm};
use rigmatch::datasets::spec;
use rigmatch::query::{template, Flavor};

fn small_graph(name: &str, seed: u64) -> rigmatch::graph::DataGraph {
    // ~300-node instances keep brute-force-ish baselines fast
    let s = spec(name).unwrap();
    s.generate((300.0 / s.nodes as f64).min(1.0), seed)
}

#[test]
fn all_homomorphism_engines_agree_on_h_queries() {
    let budget = Budget::unlimited();
    for name in ["em", "ep"] {
        let g = small_graph(name, 5);
        let gm = GmEngine::new(g.clone());
        let jm = Jm::new(&g);
        let tm = Tm::new(&g);
        let neo = NeoLike::new(&g);
        for id in [0usize, 2, 6, 8, 11, 15] {
            let q = template(id).instantiate_modulo(Flavor::H, g.num_labels());
            let expect = gm.evaluate(&q, &budget).occurrences;
            assert_eq!(jm.evaluate(&q, &budget).occurrences, expect, "{name} HQ{id} JM");
            assert_eq!(tm.evaluate(&q, &budget).occurrences, expect, "{name} HQ{id} TM");
            assert_eq!(neo.evaluate(&q, &budget).occurrences, expect, "{name} HQ{id} Neo");
        }
    }
}

#[test]
fn direct_engines_agree_on_c_queries() {
    let budget = Budget::unlimited();
    let g = small_graph("ep", 9);
    let gm = GmEngine::new(g.clone());
    let gf = GfLike::new(&g);
    let eh = EhLike::new(&g);
    let rm = RmLike::new(&g);
    for id in [0usize, 1, 6, 9, 11] {
        let q = template(id).instantiate_modulo(Flavor::C, g.num_labels());
        let expect = gm.evaluate(&q, &budget).occurrences;
        assert_eq!(gf.evaluate(&q, &budget).occurrences, expect, "CQ{id} GF");
        assert_eq!(eh.evaluate(&q, &budget).occurrences, expect, "CQ{id} EH");
        assert_eq!(rm.evaluate(&q, &budget).occurrences, expect, "CQ{id} RM");
    }
}

/// Flavor monotonicity: a direct edge is a strictly stronger constraint
/// than a reachability edge, so count(C) ≤ count(H) ≤ count(D) for the
/// same template structure.
#[test]
fn flavor_counts_are_monotone() {
    let budget = Budget::unlimited();
    let g = small_graph("em", 13);
    let gm = GmEngine::new(g.clone());
    for id in [0usize, 1, 2, 6, 7] {
        let nl = g.num_labels();
        let c = gm.evaluate(&template(id).instantiate_modulo(Flavor::C, nl), &budget);
        let h = gm.evaluate(&template(id).instantiate_modulo(Flavor::H, nl), &budget);
        let d = gm.evaluate(&template(id).instantiate_modulo(Flavor::D, nl), &budget);
        assert!(c.occurrences <= h.occurrences, "HQ{id}: C > H");
        assert!(h.occurrences <= d.occurrences, "HQ{id}: H > D");
    }
}

/// ISO (injective) counts never exceed homomorphism counts.
#[test]
fn iso_bounded_by_homomorphism() {
    use rigmatch::core::GmConfig;
    use rigmatch::mjoin::EnumOptions;
    let budget = Budget::unlimited();
    let g = small_graph("ep", 21);
    let gm = GmEngine::new(g.clone());
    let iso = GmEngine::with_config(
        g.clone(),
        GmConfig {
            enumeration: EnumOptions { injective: true, ..Default::default() },
            ..Default::default()
        },
        "ISO",
    );
    for id in [0usize, 2, 6, 11] {
        let q = template(id).instantiate_modulo(Flavor::C, g.num_labels());
        let homo = gm.evaluate(&q, &budget).occurrences;
        let inj = iso.evaluate(&q, &budget).occurrences;
        assert!(inj <= homo, "CQ{id}: iso {inj} > homo {homo}");
    }
}

/// GM never materializes intermediate tuples; JM's intermediates meet or
/// exceed its output (the asymmetry Fig. 8 exploits).
#[test]
fn intermediate_tuple_accounting() {
    let budget = Budget::unlimited();
    let g = small_graph("ep", 33);
    let gm = GmEngine::new(g.clone());
    let jm = Jm::new(&g);
    let q = template(8).instantiate_modulo(Flavor::H, g.num_labels());
    let rg = gm.evaluate(&q, &budget);
    let rj = jm.evaluate(&q, &budget);
    assert_eq!(rg.intermediate_tuples, 0);
    assert!(rj.intermediate_tuples >= rj.occurrences);
}

/// The D-query-over-transitive-closure trick (§7.5): converting every
/// reachability edge to a direct edge over the materialized closure graph
/// yields the same counts as GM on the original graph.
#[test]
fn tc_conversion_preserves_d_query_answers() {
    use rigmatch::query::{EdgeKind, PatternQuery};
    use rigmatch::reach::TransitiveClosure;
    let budget = Budget::unlimited();
    let g = small_graph("em", 41);
    let gm = GmEngine::new(g.clone());
    let tc = TransitiveClosure::new(&g);
    let tcg = tc.to_graph(&g);
    let gm_tc = GmEngine::new(tcg.clone());
    for id in [0usize, 1, 2, 6] {
        let q = template(id).instantiate_modulo(Flavor::D, g.num_labels());
        let mut qc = PatternQuery::new(q.labels().to_vec());
        for e in q.edges() {
            qc.ensure_edge(e.from, e.to, EdgeKind::Direct);
        }
        assert_eq!(
            gm.evaluate(&q, &budget).occurrences,
            gm_tc.evaluate(&qc, &budget).occurrences,
            "DQ{id}"
        );
    }
}
