//! `crashwriter` — deterministic durable-commit driver for the
//! kill-and-recover differential suite (`tests/kill_recover.rs`).
//!
//! ```text
//! crashwriter <data-dir> <seed> <strict|batched|none> <commits>
//! ```
//!
//! Creates a durable session at `<data-dir>` seeded with the
//! deterministic base graph ([`base_graph`] — the test reconstructs the
//! same one from the same seed), then commits `<commits>` transactions
//! drawn from `MutationStream::new(base, seed)`, printing `ack <version>`
//! to stdout (flushed and, under `strict`, durable by the time the line
//! appears) after each acknowledged commit. The parent test SIGKILLs this
//! process at an arbitrary point in that stream and checks that recovery
//! yields exactly the acked prefix — byte-identical graph and query
//! answers against an in-memory reference.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

use rigmatch::core::{Durability, FsBackend, Session, StoreOptions};
use rigmatch::graph::{DataGraph, MutationStream};

/// The base graph the writer starts from — deterministic in `seed`, shared
/// by value (not by code path) with `tests/kill_recover.rs`.
pub fn base_graph(seed: u64) -> DataGraph {
    let g = rigmatch::datasets::erdos_renyi(120, 360, seed);
    rigmatch::datasets::zipf_labels(&g, 4, 1.0, seed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, seed, durability, commits) = match args.as_slice() {
        [dir, seed, durability, commits] => {
            let Ok(seed) = seed.parse::<u64>() else {
                eprintln!("bad seed");
                return ExitCode::from(2);
            };
            let Some(d) = Durability::parse(durability) else {
                eprintln!("bad durability");
                return ExitCode::from(2);
            };
            let Ok(commits) = commits.parse::<u64>() else {
                eprintln!("bad commit count");
                return ExitCode::from(2);
            };
            (dir.clone(), seed, d, commits)
        }
        _ => {
            eprintln!("usage: crashwriter <data-dir> <seed> <strict|batched|none> <commits>");
            return ExitCode::from(2);
        }
    };

    let base = Arc::new(base_graph(seed));
    let session = match Session::create_at_with(
        &dir,
        Arc::clone(&base),
        Default::default(),
        Arc::new(FsBackend),
        StoreOptions::with_durability(durability),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("create: {e}");
            return ExitCode::from(e.kind().exit_code());
        }
    };

    let mut stream = MutationStream::new(base, seed);
    let stdout = std::io::stdout();
    for _ in 0..commits {
        let ops = stream.next_txn(6);
        match session.apply(&ops) {
            Ok(summary) => {
                // the ack line leaves this process only after the commit
                // was acknowledged by the store
                let mut out = stdout.lock();
                writeln!(out, "ack {}", summary.version).expect("stdout");
                out.flush().expect("stdout flush");
            }
            Err(e) => {
                eprintln!("commit: {e}");
                return ExitCode::from(e.kind().exit_code());
            }
        }
    }
    if let Err(e) = session.flush_wal() {
        eprintln!("flush: {e}");
        return ExitCode::from(e.kind().exit_code());
    }
    println!("done");
    ExitCode::SUCCESS
}
