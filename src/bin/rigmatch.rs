//! `rigmatch` — command-line hybrid graph pattern matching.
//!
//! ```text
//! rigmatch <graph-file> <query-file> [options]
//!
//! options:
//!   --engine gm|jm|tm|neo    matcher to use            (default gm)
//!   --limit <n>              stop after n matches      (default all)
//!   --timeout <secs>         wall-clock budget         (default none)
//!   --threads <n>            parallel workers, gm only (default 1)
//!   --count                  print only the count
//!   --order jo|ri|bj         search order, gm only     (default jo)
//!   --no-reduction           skip query transitive reduction
//!   --stats                  print phase timings and RIG statistics
//! ```
//!
//! With `--threads N` (N > 1) GM runs the morsel-driven parallel engine:
//! counting uses per-worker counting sinks, enumeration streams matches
//! through per-worker batched sinks (match order is then
//! scheduling-dependent; RIG construction is parallelized too). `--limit`
//! and `--timeout` are honored in both modes.
//!
//! Graph files use the `rig-graph` text format (`v <id> <label>` /
//! `e <src> <dst>`); query files use the `rig-query` format (`n <id>
//! <label>`, `d <from> <to>` direct, `r <from> <to>` reachability).

use std::process::ExitCode;
use std::time::Duration;

use rigmatch::baselines::{Budget, Engine, Jm, NeoLike, Tm};
use rigmatch::core::{GmConfig, Matcher};
use rigmatch::graph::parse_text;
use rigmatch::mjoin::{BatchSink, EnumOptions, ParOptions, SearchOrder};
use rigmatch::query::parse_query;

struct Cli {
    graph_path: String,
    query_path: String,
    engine: String,
    limit: Option<u64>,
    timeout: Option<Duration>,
    threads: usize,
    count_only: bool,
    order: SearchOrder,
    reduction: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rigmatch <graph-file> <query-file> [--engine gm|jm|tm|neo] \
         [--limit N] [--timeout SECS] [--threads N] [--count] \
         [--order jo|ri|bj] [--no-reduction] [--stats]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let argv: Vec<String> = std::env::args().collect();
    if argv.len() < 3 {
        usage();
    }
    let mut cli = Cli {
        graph_path: argv[1].clone(),
        query_path: argv[2].clone(),
        engine: "gm".into(),
        limit: None,
        timeout: None,
        threads: 1,
        count_only: false,
        order: SearchOrder::Jo,
        reduction: true,
        stats: false,
    };
    let mut i = 3;
    while i < argv.len() {
        match argv[i].as_str() {
            "--engine" => {
                i += 1;
                cli.engine = argv.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--limit" => {
                i += 1;
                cli.limit =
                    Some(argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--timeout" => {
                i += 1;
                let secs: u64 = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                cli.timeout = Some(Duration::from_secs(secs));
            }
            "--threads" => {
                i += 1;
                cli.threads = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--count" => cli.count_only = true,
            "--order" => {
                i += 1;
                cli.order = match argv.get(i).map(|s| s.as_str()) {
                    Some("jo") => SearchOrder::Jo,
                    Some("ri") => SearchOrder::Ri,
                    Some("bj") => SearchOrder::Bj,
                    _ => usage(),
                };
            }
            "--no-reduction" => cli.reduction = false,
            "--stats" => cli.stats = true,
            _ => usage(),
        }
        i += 1;
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let graph_text = match std::fs::read_to_string(&cli.graph_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cli.graph_path);
            return ExitCode::FAILURE;
        }
    };
    let query_text = match std::fs::read_to_string(&cli.query_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cli.query_path);
            return ExitCode::FAILURE;
        }
    };
    let g = match parse_text(&graph_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: bad graph file: {e}");
            return ExitCode::FAILURE;
        }
    };
    let q = match parse_query(&query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: bad query file: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !q.is_connected() {
        eprintln!("error: query must be connected");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "graph: {:?}; query: {} nodes / {} edges ({} reachability)",
        g,
        q.num_nodes(),
        q.num_edges(),
        q.reachability_edge_count()
    );

    match cli.engine.as_str() {
        "gm" => {
            let mut cfg = GmConfig {
                skip_reduction: !cli.reduction,
                enumeration: EnumOptions {
                    order: cli.order,
                    limit: cli.limit,
                    timeout: cli.timeout,
                    ..Default::default()
                },
                ..Default::default()
            };
            if cli.threads > 1 {
                cfg.rig = cfg.rig.with_build_threads(cli.threads);
            }
            let matcher = Matcher::new(&g);
            let outcome = if cli.count_only && cli.threads > 1 {
                matcher.par_count(&q, &cfg, cli.threads)
            } else if cli.count_only {
                matcher.count(&q, &cfg)
            } else if cli.threads > 1 {
                // Parallel streaming: each worker batches matches and
                // flushes them under a shared stdout lock, so nothing is
                // materialized and lines never interleave mid-tuple.
                let stdout = std::io::stdout();
                let (_, outcome) =
                    matcher.par_run(&q, &cfg, &ParOptions::with_threads(cli.threads), |_worker| {
                        let stdout = &stdout;
                        BatchSink::new(q.num_nodes(), 256, move |flat: &[u32], arity| {
                            use std::io::Write;
                            let mut out = stdout.lock();
                            for t in flat.chunks(arity.max(1)) {
                                let line =
                                    t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
                                writeln!(out, "{line}").expect("stdout write");
                            }
                        })
                    });
                outcome
            } else {
                matcher.run_with(&q, &cfg, |t| {
                    println!("{}", t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" "));
                    true
                })
            };
            eprintln!(
                "{} occurrence(s){}",
                outcome.result.count,
                if outcome.result.timed_out { " [timeout]" } else { "" }
            );
            if cli.count_only {
                println!("{}", outcome.result.count);
            }
            if cli.stats {
                let m = &outcome.metrics;
                eprintln!(
                    "reduction: {} edge(s) removed in {:?}",
                    m.edges_reduced, m.reduction_time
                );
                eprintln!(
                    "RIG: {} nodes / {} edges (select {:?}, expand {:?}, {} sim passes, {} pruned)",
                    m.rig_stats.node_count,
                    m.rig_stats.edge_count,
                    m.rig_stats.select_time,
                    m.rig_stats.expand_time,
                    m.rig_stats.sim_passes,
                    m.rig_stats.pruned
                );
                eprintln!(
                    "times: total {:?} (matching {:?}, enumeration {:?})",
                    m.total_time,
                    m.matching_time(),
                    m.enumeration_time
                );
            }
        }
        name @ ("jm" | "tm" | "neo") => {
            let budget = Budget {
                timeout: cli.timeout,
                max_intermediate: Some(50_000_000),
                match_limit: cli.limit,
            };
            let jm;
            let tm;
            let neo;
            let engine: &dyn Engine = match name {
                "jm" => {
                    jm = Jm::new(&g);
                    &jm
                }
                "tm" => {
                    tm = Tm::new(&g);
                    &tm
                }
                _ => {
                    neo = NeoLike::new(&g);
                    &neo
                }
            };
            let r = engine.evaluate(&q, &budget);
            eprintln!(
                "{}: {} occurrence(s) in {:?} [{}], {} intermediate tuple(s)",
                engine.name(),
                r.occurrences,
                r.total_time,
                r.status.code(),
                r.intermediate_tuples
            );
            println!("{}", r.occurrences);
        }
        other => {
            eprintln!("error: unknown engine '{other}'");
            return ExitCode::FAILURE;
        }
    }
    // sanity cross-check available to scripts via exit code
    ExitCode::SUCCESS
}
