//! `rigmatch` — command-line hybrid graph pattern matching.
//!
//! ```text
//! rigmatch [explain] <graph-file> (<query-file> | --query 'HPQL') [options]
//! rigmatch check <graph-file> (<query-file> | --query 'HPQL')
//!                [--format text|json] [--mutations <file>]
//! rigmatch update <graph-file> <mutations-file> [--output <path>] [--stats]
//! rigmatch recover <data-dir>
//! rigmatch serve [<graph-file>] [--addr HOST:PORT] [--workers N]
//!                [--queue-depth N] [--data-dir DIR] [--durability ...]
//!
//! options:
//!   --query 'MATCH ...'      inline HPQL query (instead of a query file)
//!   --engine gm|jm|tm|neo    matcher to use            (default gm)
//!   --limit <n>              stop after n matches      (default all)
//!   --timeout <secs>         wall-clock budget         (default none)
//!   --threads <n>            parallel workers, gm only (default 1)
//!   --shards <n>             sharded execution, gm + serve (default off):
//!                            partition the graph into n shards and run
//!                            the scatter-gather MJoin
//!   --partitioner hash|range owner function for --shards (default hash)
//!   --count                  print only the count
//!   --order jo|ri|bj         search order, gm only     (default jo)
//!   --no-reduction           skip query transitive reduction
//!   --mutations <file>       apply a mutation script before querying
//!   --factorized             print the factorized answer summary, gm only
//!   --stats                  print phase timings and RIG statistics
//!   --strict                 fail (exit 6) if limit/timeout truncated the run
//!   --lint off|warn|strict   static analysis before running, gm only
//!                            (warn prints findings; strict exits 8 on errors)
//!   --data-dir <dir>         durable store: WAL + snapshots (gm only)
//!   --durability strict|batched|none   fsync policy (default strict)
//! ```
//!
//! `check` runs the static analyzer (`rig_analyze`) **without executing
//! the query**: name resolution with did-you-mean hints, emptiness proofs
//! (empty labels, impossible direct edges, refuted reachability),
//! redundancy lints and cost warnings — see `docs/analysis.md` for the
//! lint-code table. Text output renders rustc-style caret underlines over
//! the query source; `--format json` emits the machine schema benchcheck
//! validates. Exit code: `0` clean (or warnings/notes only), `8` any
//! error-severity finding, `3` if the query text failed to parse. With
//! `--mutations <file>` the script is applied first, so proofs read
//! through the delta overlay.
//!
//! `explain` (first argument) prints the plan instead of running it: the
//! query as given, its transitive reduction, the RIG statistics, the
//! search order MJoin would use, and the `count()` routing decision
//! (factorized DP vs. tuple enumeration — see `docs/factorized.md`).
//!
//! `--factorized` prints the factorized answer-graph summary instead of
//! enumerating: query shape (tree vs. cyclic with conditioning), the
//! exact DP occurrence count, and per-variable candidate / distinct
//! cardinalities — all computed without materializing a single tuple.
//!
//! `update` applies a mutation script (`a v <label>` / `a e <u> <v>` /
//! `d v <id>` / `d e <u> <v>` lines, `commit` boundaries — see
//! `docs/updates.md`) and writes the resulting graph in the text format
//! (tombstoned nodes appear as `x <id>` lines, keeping node ids stable).
//! With `--mutations <file>` the query path does the same in memory first:
//! GM runs on the delta overlay directly; baseline engines get the
//! materialized graph.
//!
//! Query sources: a file in either format — **HPQL**
//! (`MATCH (a:Author)->(p:Paper)=>(q:Paper)`, detected by its leading
//! `MATCH` keyword) or the legacy line format (`n <id> <label>`, `d`/`r`
//! edges) — or inline HPQL via `--query`. HPQL label names resolve through
//! the graph's label-name dictionary (`l <id> <name>` lines in the graph
//! file); numeric labels (`(a:0)`) always work.
//!
//! Graph files use the `rig-graph` text format (`v <id> <label>` /
//! `e <src> <dst>` / optional `l <id> <name>`).
//!
//! With `--threads N` (N > 1) GM runs the morsel-driven parallel engine:
//! counting uses per-worker counting sinks, enumeration streams matches
//! through per-worker batched sinks (match order is then
//! scheduling-dependent; RIG construction is parallelized too). `--limit`
//! and `--timeout` are honored in both modes.
//!
//! With `--data-dir <dir>` the GM session is **durable**: an empty or
//! uninitialized directory is seeded from the graph file (binary snapshot
//! segment + write-ahead log), and every mutation commit is logged before
//! it is acknowledged. An already-initialized directory is *opened*
//! instead — the graph file argument is then ignored (recovery replays
//! the WAL over the last snapshot). `recover <data-dir>` opens a store,
//! prints its recovery report and integrity findings, and exits — see
//! `docs/durability.md`.
//!
//! `serve` starts the concurrent HTTP/NDJSON query server (`rig_server`)
//! over the graph (or an initialized `--data-dir` store, in which case
//! the graph file may be omitted): `POST /query` (HPQL in, streamed
//! NDJSON or a count out), `POST /update` (mutation scripts), `GET
//! /metrics` (Prometheus text), `GET /healthz`, `POST /shutdown`. It
//! prints `listening on http://ADDR` on stdout (with the resolved port —
//! use `--addr 127.0.0.1:0` for an ephemeral one) and exits 0 after a
//! clean shutdown. See `docs/serving.md`.
//!
//! Exit codes: `0` success, `1` internal error, `2` usage, `3` parse
//! error, `4` I/O error, `5` validation error, `6` budget exceeded (with
//! `--strict`), `7` storage error (corruption, fsync failure, …), `8`
//! static analysis rejected the query (`check`, `--lint strict`).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rigmatch::baselines::{Budget, Engine, Jm, NeoLike, Tm};
use rigmatch::core::{
    Durability, Error, FsBackend, GmConfig, LintMode, Partitioner, Session, ShardOptions,
    StoreOptions,
};
use rigmatch::graph::parse_text;
use rigmatch::mjoin::{BatchSink, EnumOptions, ResultSink, SearchOrder};
use rigmatch::query::{looks_like_hpql, parse_query, PatternQuery};
use rigmatch::storage::DurableStore;

struct Cli {
    explain: bool,
    /// `check` subcommand: static analysis only, never executes.
    check: bool,
    /// `--format json` for `check` (text with carets otherwise).
    format_json: bool,
    /// Lint gate in front of the gm query path (`--lint`).
    lint: LintMode,
    /// `update` subcommand: apply mutations, write the graph back out.
    update: bool,
    /// `recover` subcommand: open a durable store, report, exit.
    recover: bool,
    /// `serve` subcommand: run the HTTP query server until shutdown.
    serve: bool,
    /// Listen address for `serve` (port 0 picks an ephemeral port).
    addr: String,
    /// Worker pool size for `serve`.
    workers: usize,
    /// Admission-queue depth for `serve` (beyond it: 503).
    queue_depth: usize,
    graph_path: String,
    /// A query file path, unless `--query` supplied inline text.
    query_path: Option<String>,
    query_text: Option<String>,
    /// Mutation script applied before querying (`--mutations`), or the
    /// positional script of the `update` subcommand.
    mutations_path: Option<String>,
    /// `update` output path (stdout when absent).
    output_path: Option<String>,
    engine: String,
    limit: Option<u64>,
    timeout: Option<Duration>,
    threads: usize,
    /// Sharded execution (`--shards N`), gm and serve: partition the
    /// graph and run the scatter-gather MJoin.
    shards: Option<usize>,
    /// Owner function for `--shards` (`--partitioner hash|range`).
    partitioner: Partitioner,
    count_only: bool,
    /// Print the factorized answer summary instead of enumerating.
    factorized: bool,
    order: SearchOrder,
    reduction: bool,
    stats: bool,
    strict: bool,
    /// Durable store directory (`--data-dir`), gm only.
    data_dir: Option<String>,
    durability: Durability,
}

fn usage() -> ! {
    eprintln!(
        "usage: rigmatch [explain] <graph-file> (<query-file> | --query 'HPQL') \
         [--engine gm|jm|tm|neo] [--limit N] [--timeout SECS] [--threads N] \
         [--shards N] [--partitioner hash|range] \
         [--count] [--factorized] [--order jo|ri|bj] [--no-reduction] \
         [--mutations FILE] [--stats] [--strict] [--lint off|warn|strict] \
         [--data-dir DIR] [--durability strict|batched|none]\n\
         \x20      rigmatch check <graph-file> (<query-file> | --query 'HPQL') \
         [--format text|json] [--mutations FILE]\n\
         \x20      rigmatch update <graph-file> <mutations-file> [--output PATH] [--stats] \
         [--data-dir DIR] [--durability strict|batched|none]\n\
         \x20      rigmatch recover <data-dir>\n\
         \x20      rigmatch serve [<graph-file>] [--addr HOST:PORT] [--workers N] \
         [--queue-depth N] [--shards N] [--partitioner hash|range] \
         [--data-dir DIR] [--durability strict|batched|none]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let explain = argv.first().map(|s| s.as_str()) == Some("explain");
    let check = argv.first().map(|s| s.as_str()) == Some("check");
    let update = argv.first().map(|s| s.as_str()) == Some("update");
    let recover = argv.first().map(|s| s.as_str()) == Some("recover");
    let serve = argv.first().map(|s| s.as_str()) == Some("serve");
    if explain || check || update || recover || serve {
        argv.remove(0);
    }
    let mut cli = Cli {
        explain,
        check,
        format_json: false,
        lint: LintMode::Off,
        update,
        recover,
        serve,
        addr: "127.0.0.1:7474".into(),
        workers: 4,
        queue_depth: 16,
        graph_path: String::new(),
        query_path: None,
        query_text: None,
        mutations_path: None,
        output_path: None,
        engine: "gm".into(),
        limit: None,
        timeout: None,
        threads: 1,
        shards: None,
        partitioner: Partitioner::Hash,
        count_only: false,
        factorized: false,
        order: SearchOrder::Jo,
        reduction: true,
        stats: false,
        strict: false,
        data_dir: None,
        durability: Durability::Strict,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--query" => {
                i += 1;
                cli.query_text = Some(argv.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--engine" => {
                i += 1;
                cli.engine = argv.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--limit" => {
                i += 1;
                cli.limit =
                    Some(argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--timeout" => {
                i += 1;
                let secs: u64 = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                cli.timeout = Some(Duration::from_secs(secs));
            }
            "--threads" => {
                i += 1;
                cli.threads = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                let n: usize = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                cli.shards = Some(n);
            }
            "--partitioner" => {
                i += 1;
                cli.partitioner =
                    argv.get(i).and_then(|s| Partitioner::parse(s)).unwrap_or_else(|| usage());
            }
            "--count" => cli.count_only = true,
            "--factorized" => cli.factorized = true,
            "--order" => {
                i += 1;
                cli.order = match argv.get(i).map(|s| s.as_str()) {
                    Some("jo") => SearchOrder::Jo,
                    Some("ri") => SearchOrder::Ri,
                    Some("bj") => SearchOrder::Bj,
                    _ => usage(),
                };
            }
            "--no-reduction" => cli.reduction = false,
            "--mutations" => {
                i += 1;
                cli.mutations_path = Some(argv.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--output" => {
                i += 1;
                cli.output_path = Some(argv.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--addr" => {
                i += 1;
                cli.addr = argv.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--workers" => {
                i += 1;
                cli.workers = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--queue-depth" => {
                i += 1;
                cli.queue_depth =
                    argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--stats" => cli.stats = true,
            "--strict" => cli.strict = true,
            "--format" => {
                i += 1;
                cli.format_json = match argv.get(i).map(|s| s.as_str()) {
                    Some("json") => true,
                    Some("text") => false,
                    _ => usage(),
                };
            }
            "--lint" => {
                i += 1;
                cli.lint = argv.get(i).and_then(|s| LintMode::parse(s)).unwrap_or_else(|| usage());
            }
            "--data-dir" => {
                i += 1;
                cli.data_dir = Some(argv.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--durability" => {
                i += 1;
                cli.durability =
                    argv.get(i).and_then(|s| Durability::parse(s)).unwrap_or_else(|| usage());
            }
            flag if flag.starts_with("--") => usage(),
            _ => positional.push(argv[i].clone()),
        }
        i += 1;
    }
    if cli.recover {
        if positional.len() != 1 || cli.query_text.is_some() {
            usage();
        }
        cli.data_dir = Some(positional.remove(0));
        return cli;
    }
    if cli.serve {
        // graph file optional: an initialized --data-dir store suffices
        match positional.len() {
            0 => {}
            1 => cli.graph_path = positional.remove(0),
            _ => usage(),
        }
        if cli.query_text.is_some() {
            usage();
        }
        return cli;
    }
    if cli.update {
        if positional.len() != 2 || cli.query_text.is_some() {
            usage();
        }
        cli.graph_path = positional.remove(0);
        cli.mutations_path = Some(positional.remove(0));
        return cli;
    }
    match (positional.len(), cli.query_text.is_some()) {
        (2, false) => {
            cli.graph_path = positional.remove(0);
            cli.query_path = Some(positional.remove(0));
        }
        (1, true) => cli.graph_path = positional.remove(0),
        _ => usage(),
    }
    cli
}

fn exit_for(e: &Error) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(e.kind().exit_code())
}

/// Writes `text` to stdout. A closed pipe (`rigmatch ... | head`) is a
/// clean no-op — the reader chose to stop — while any other write error
/// surfaces as `Error::Io` (exit code 4).
fn write_stdout(text: &str) -> Result<(), Error> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(Error::io("stdout", e)),
    }
}

/// Shared record of stdout trouble seen by streaming sinks. A closed pipe
/// asks the enumeration to stop cleanly (exit 0 — `head` got the lines it
/// wanted); any other write error is kept so the caller can surface it as
/// `Error::Io` once the workers have drained.
#[derive(Default)]
struct StdoutTrouble {
    closed: AtomicBool,
    error: Mutex<Option<std::io::Error>>,
}

impl StdoutTrouble {
    fn record(&self, e: std::io::Error) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            let mut slot = self.error.lock().unwrap_or_else(|p| p.into_inner());
            slot.get_or_insert(e);
        }
        self.closed.store(true, Ordering::Relaxed);
    }

    fn check(&self) -> Result<(), Error> {
        match self.error.lock().unwrap_or_else(|p| p.into_inner()).take() {
            Some(e) => Err(Error::io("stdout", e)),
            None => Ok(()),
        }
    }
}

/// Wraps a sink so enumeration stops (push returns `false`) once stdout
/// has gone away — `BatchSink::push` itself always says "keep going", so
/// without this an EPIPE mid-stream would keep every worker enumerating
/// into a dead pipe.
struct StopOnTrouble<'a, S> {
    inner: S,
    trouble: &'a StdoutTrouble,
}

impl<S: ResultSink> ResultSink for StopOnTrouble<'_, S> {
    fn push(&mut self, tuple: &[u32]) -> bool {
        self.inner.push(tuple) && !self.trouble.closed.load(Ordering::Relaxed)
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

fn read_file(path: &str) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|io| Error::io(path, io))
}

/// The query as the session will receive it: HPQL text (resolved against
/// the graph inside `prepare`) or an already-parsed legacy pattern.
enum QuerySource {
    Hpql(String),
    Legacy(PatternQuery),
}

fn load_query(cli: &Cli) -> Result<QuerySource, Error> {
    if let Some(text) = &cli.query_text {
        return Ok(QuerySource::Hpql(text.clone()));
    }
    let path = cli.query_path.as_deref().expect("parse_cli guarantees a query source");
    let text = read_file(path)?;
    if looks_like_hpql(&text) {
        Ok(QuerySource::Hpql(text))
    } else {
        Ok(QuerySource::Legacy(parse_query(&text)?))
    }
}

fn main() -> ExitCode {
    let cli = parse_cli();
    match run(&cli) {
        Ok(code) => code,
        Err(e) => exit_for(&e),
    }
}

/// Parses the mutation script at `path` and commits it segment by segment
/// (each `commit` line is one transaction; EOF commits the tail).
fn apply_mutations(session: &Session, path: &str, stats: bool) -> Result<(), Error> {
    let text = read_file(path)?;
    let script = rigmatch::graph::parse_mutations(&text)?;
    for ops in &script {
        let summary = session.apply(ops)?;
        if stats {
            eprintln!(
                "commit v{}: +{}n -{}n +{}e -{}e, touched labels {:?}, \
                 {} plan(s) invalidated / {} retained{}",
                summary.version,
                summary.nodes_added,
                summary.nodes_removed,
                summary.edges_added,
                summary.edges_removed,
                summary.touched_labels,
                summary.plans_invalidated,
                summary.plans_retained,
                if summary.compacted { " [compacted]" } else { "" },
            );
        }
    }
    Ok(())
}

/// Builds the GM session, durable when `--data-dir` was given: an
/// initialized store directory is opened (recovery; the graph file is
/// ignored), anything else is seeded from `load_graph()`. The graph file
/// is only read when actually needed.
fn make_session(
    cli: &Cli,
    cfg: GmConfig,
    load_graph: impl FnOnce() -> Result<rigmatch::graph::DataGraph, Error>,
) -> Result<Session, Error> {
    let Some(dir) = &cli.data_dir else {
        return Ok(Session::with_config(load_graph()?, cfg));
    };
    let opts = StoreOptions::with_durability(cli.durability);
    if DurableStore::is_initialized(&FsBackend, std::path::Path::new(dir)) {
        let session = Session::open_with(dir, cfg, std::sync::Arc::new(FsBackend), opts)?;
        if !cli.graph_path.is_empty() {
            eprintln!("note: '{dir}' already holds a store; graph file ignored, recovered instead");
        }
        if let Some(r) = session.recovery_report() {
            eprintln!(
                "recovered v{} ({} wal record(s) replayed)",
                r.recovered_version, r.wal_records_replayed
            );
        }
        Ok(session)
    } else {
        Session::create_at_with(dir, load_graph()?, cfg, std::sync::Arc::new(FsBackend), opts)
    }
}

/// Enables sharded execution on the session when `--shards` was given
/// (gm and serve paths; the baseline engines have no sharded analogue).
fn apply_sharding(cli: &Cli, session: &Session) {
    if let Some(shards) = cli.shards {
        session.set_sharding(ShardOptions { shards, partitioner: cli.partitioner });
        eprintln!(
            "sharded execution: {} shard(s), {} partitioning",
            shards,
            cli.partitioner.name()
        );
    }
}

/// The `recover` subcommand: open the store, print what recovery found,
/// and exit. Corruption or I/O trouble surfaces as exit code 7.
fn run_recover(cli: &Cli) -> Result<ExitCode, Error> {
    let dir = cli.data_dir.as_deref().expect("parse_cli guarantees a data dir");
    let session = Session::open(dir)?;
    let report = session.recovery_report().expect("opened sessions carry a report");
    write_stdout(&format!("{report}"))?;
    eprintln!("graph: {:?}", session.graph());
    Ok(ExitCode::SUCCESS)
}

fn run_update(cli: &Cli, g: Option<rigmatch::graph::DataGraph>) -> Result<ExitCode, Error> {
    let session = make_session(cli, GmConfig::default(), || {
        Ok(g.expect("graph parsed unless the store was opened"))
    })?;
    let before = format!("{:?}", session.graph());
    let path = cli.mutations_path.as_deref().expect("parse_cli guarantees a script");
    apply_mutations(&session, path, cli.stats)?;
    // surface batched-WAL sync trouble here instead of losing it in Drop
    session.flush_wal()?;
    let snap = session.graph();
    eprintln!("{} -> {:?}", before, snap);
    let out = rigmatch::graph::to_text(&snap.materialize());
    match &cli.output_path {
        Some(p) => {
            std::fs::write(p, &out).map_err(|e| Error::io(p.clone(), e))?;
            eprintln!("wrote {p}");
        }
        None => write_stdout(&out)?,
    }
    Ok(ExitCode::SUCCESS)
}

/// The `serve` subcommand: bind the HTTP server over the session and run
/// until `POST /shutdown`. Prints the resolved listen address on stdout
/// so scripts (ci.sh, the load generator) can discover an ephemeral port.
fn run_serve(cli: &Cli) -> Result<ExitCode, Error> {
    let store_open = cli
        .data_dir
        .as_deref()
        .is_some_and(|d| DurableStore::is_initialized(&FsBackend, std::path::Path::new(d)));
    let g = if store_open {
        None
    } else {
        if cli.graph_path.is_empty() {
            return Err(Error::validation(
                "serve needs a graph file or an initialized --data-dir store",
            ));
        }
        Some(parse_text(&read_file(&cli.graph_path)?)?)
    };
    let session = make_session(cli, GmConfig::default(), || {
        Ok(g.expect("graph parsed unless the store was opened"))
    })?;
    apply_sharding(cli, &session);
    eprintln!("graph: {:?}", session.graph());
    let config = rigmatch::server::ServerConfig {
        workers: cli.workers.max(1),
        queue_depth: cli.queue_depth.max(1),
        ..Default::default()
    };
    let server = rigmatch::server::Server::bind(std::sync::Arc::new(session), &cli.addr, config)
        .map_err(|e| Error::io(cli.addr.clone(), e))?;
    let addr = server.local_addr();
    write_stdout(&format!("listening on http://{addr}\n"))?;
    eprintln!("{} worker(s), queue depth {}; POST /shutdown stops", cli.workers, cli.queue_depth);
    server.serve().map_err(|e| Error::io(addr.to_string(), e))?;
    eprintln!("server stopped");
    Ok(ExitCode::SUCCESS)
}

fn run(cli: &Cli) -> Result<ExitCode, Error> {
    if cli.recover {
        return run_recover(cli);
    }
    if cli.serve {
        return run_serve(cli);
    }
    // With an already-initialized --data-dir the store is authoritative
    // and the graph file is never read.
    let store_open = cli
        .data_dir
        .as_deref()
        .is_some_and(|d| DurableStore::is_initialized(&FsBackend, std::path::Path::new(d)));
    let g = if store_open {
        None
    } else {
        let graph_text = read_file(&cli.graph_path)?;
        Some(parse_text(&graph_text)?)
    };
    if cli.update {
        return run_update(cli, g);
    }
    let source = load_query(cli)?;
    if cli.check {
        return run_check(cli, g, source);
    }

    let cfg = GmConfig {
        skip_reduction: !cli.reduction,
        enumeration: EnumOptions {
            order: cli.order,
            limit: cli.limit,
            timeout: cli.timeout,
            ..Default::default()
        },
        ..Default::default()
    };

    match cli.engine.as_str() {
        "gm" => run_gm(cli, g, source, cfg),
        name @ ("jm" | "tm" | "neo") => {
            if cli.data_dir.is_some() {
                return Err(Error::validation("--data-dir is only available for the gm engine"));
            }
            let g = g.expect("baselines always parse the graph file");
            // Baseline engines evaluate static CSR graphs: a mutation
            // script is applied through a throwaway session and handed
            // over materialized (same answers as GM's overlay path).
            let g = match &cli.mutations_path {
                Some(path) => {
                    let session = Session::new(g);
                    apply_mutations(&session, path, cli.stats)?;
                    session.graph().materialize()
                }
                None => g,
            };
            run_baseline(cli, &g, &source, name)
        }
        other => {
            eprintln!("error: unknown engine '{other}'");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// The `check` subcommand: run the static analyzer and render its
/// report, never executing the query. Exit 0 when no error-severity
/// finding fired, 8 otherwise (3 when the query text failed to parse).
fn run_check(
    cli: &Cli,
    g: Option<rigmatch::graph::DataGraph>,
    source: QuerySource,
) -> Result<ExitCode, Error> {
    let session = make_session(cli, GmConfig::default(), || {
        Ok(g.expect("graph parsed unless the store was opened"))
    })?;
    if let Some(path) = &cli.mutations_path {
        // emptiness proofs then read through the delta overlay
        apply_mutations(&session, path, cli.stats)?;
    }
    let report = match &source {
        QuerySource::Hpql(text) => session.analyze(text),
        QuerySource::Legacy(q) => session.analyze_pattern(q),
    };
    if cli.format_json {
        write_stdout(&report.to_json())?;
    } else if report.diagnostics.is_empty() {
        write_stdout("clean: no findings\n")?;
    } else {
        let (e, w, n) = report.counts();
        write_stdout(&format!("{}{e} error(s), {w} warning(s), {n} note(s)\n", report.render()))?;
    }
    if report.is_parse_failure() {
        return Ok(ExitCode::from(3));
    }
    Ok(if report.has_errors() { ExitCode::from(8) } else { ExitCode::SUCCESS })
}

fn run_gm(
    cli: &Cli,
    g: Option<rigmatch::graph::DataGraph>,
    source: QuerySource,
    mut cfg: GmConfig,
) -> Result<ExitCode, Error> {
    if cli.threads > 1 {
        cfg.rig = cfg.rig.with_build_threads(cli.threads);
    }
    let session =
        make_session(cli, cfg, || Ok(g.expect("graph parsed unless the store was opened")))?;
    apply_sharding(cli, &session);
    if let Some(path) = &cli.mutations_path {
        // GM queries straight through the delta overlay — no rebuild.
        apply_mutations(&session, path, cli.stats)?;
        session.flush_wal()?;
    }
    let source_text = match &source {
        QuerySource::Hpql(text) => Some(text.clone()),
        QuerySource::Legacy(_) => None,
    };
    let prepared = match source {
        QuerySource::Hpql(text) => match cli.lint {
            LintMode::Off => session.prepare(text.as_str())?,
            mode => {
                // warn: print findings and run anyway; strict: an
                // error-severity finding surfaces as Error::Analysis
                // through exit_for (exit code 8)
                let (prepared, report) = session.prepare_with_lint(&text, mode)?;
                if !report.diagnostics.is_empty() {
                    eprint!("{}", report.render_compact());
                }
                prepared
            }
        },
        QuerySource::Legacy(q) => session.prepare(q)?,
    };
    let q = prepared.query();
    eprintln!(
        "graph: {:?}; query: {} nodes / {} edges ({} reachability)",
        session.graph(),
        q.num_nodes(),
        q.num_edges(),
        q.reachability_edge_count()
    );

    if cli.explain {
        let mut out = format!("{}", prepared.run().order(cli.order).explain());
        // append the analyzer's findings (lints, proofs, cost notes) so
        // a plan read and a health check are one command
        let report = match &source_text {
            Some(text) => session.analyze(text),
            None => session.analyze_pattern(prepared.query()),
        };
        if !report.diagnostics.is_empty() {
            out.push_str("diagnostics:\n");
            out.push_str(&report.render_compact());
        }
        write_stdout(&out)?;
        return Ok(ExitCode::SUCCESS);
    }
    if cli.factorized {
        write_stdout(&format!("{}", prepared.run().factorized_summary()))?;
        return Ok(ExitCode::SUCCESS);
    }

    let trouble = StdoutTrouble::default();
    let outcome = if cli.count_only {
        prepared.run().threads(cli.threads).count()
    } else if cli.threads > 1 {
        // Parallel streaming: each worker batches matches and flushes
        // them under a shared stdout lock, so nothing is materialized
        // and lines never interleave mid-tuple.
        let stdout = std::io::stdout();
        let arity = q.num_nodes();
        let (_, outcome) = prepared.run().threads(cli.threads).par_stream(|_worker| {
            let stdout = &stdout;
            let trouble = &trouble;
            let inner = BatchSink::new(arity, 256, move |flat: &[u32], arity| {
                use std::io::Write;
                let mut out = stdout.lock();
                for t in flat.chunks(arity.max(1)) {
                    let line = t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
                    if let Err(e) = writeln!(out, "{line}") {
                        // reader gone: drop the rest of the batch
                        trouble.record(e);
                        return;
                    }
                }
            });
            StopOnTrouble { inner, trouble }
        });
        outcome
    } else {
        let stdout = std::io::stdout();
        let mut sink = rigmatch::mjoin::FnSink(|t: &[u32]| {
            use std::io::Write;
            let line = t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
            let mut out = stdout.lock();
            match writeln!(out, "{line}") {
                Ok(()) => true,
                Err(e) => {
                    trouble.record(e);
                    false
                }
            }
        });
        prepared.run().stream(&mut sink)
    };
    // a non-EPIPE stdout failure is a real I/O error; EPIPE is a clean stop
    trouble.check()?;

    eprintln!(
        "{} occurrence(s){}",
        outcome.result.count,
        if outcome.result.timed_out { " [timeout]" } else { "" }
    );
    if cli.count_only {
        write_stdout(&format!("{}\n", outcome.result.count))?;
    }
    if cli.stats {
        let m = &outcome.metrics;
        eprintln!("reduction: {} edge(s) removed in {:?}", m.edges_reduced, m.reduction_time);
        eprintln!(
            "RIG: {} nodes / {} edges ({}; select {:?}, expand {:?}, {} sim passes, {} pruned)",
            m.rig_stats.node_count,
            m.rig_stats.edge_count,
            if m.rig_from_cache { "cached" } else { "built" },
            m.rig_stats.select_time,
            m.rig_stats.expand_time,
            m.rig_stats.sim_passes,
            m.rig_stats.pruned
        );
        eprintln!(
            "times: total {:?} (matching {:?}, enumeration {:?})",
            m.total_time,
            m.matching_time(),
            m.enumeration_time
        );
    }
    if cli.strict {
        // propagate a truncated answer as a distinct exit code for scripts
        outcome.require_complete()?;
    }
    Ok(ExitCode::SUCCESS)
}

fn run_baseline(
    cli: &Cli,
    g: &rigmatch::graph::DataGraph,
    source: &QuerySource,
    name: &str,
) -> Result<ExitCode, Error> {
    if cli.explain {
        return Err(Error::validation("explain is only available for the gm engine"));
    }
    if cli.factorized {
        return Err(Error::validation("--factorized is only available for the gm engine"));
    }
    // Baselines take a ready pattern; resolve and validate through the
    // same path Session::prepare uses, so a bad query classifies (and
    // exits) identically whichever engine was asked to run it.
    use rigmatch::core::{validate_pattern, IntoPattern};
    use rigmatch::graph::GraphView;
    let (q, vars) = match source {
        QuerySource::Legacy(q) => q.into_pattern(GraphView::from(g))?,
        QuerySource::Hpql(text) => text.as_str().into_pattern(GraphView::from(g))?,
    };
    validate_pattern(g, &q, vars.as_deref())?;
    let budget =
        Budget { timeout: cli.timeout, max_intermediate: Some(50_000_000), match_limit: cli.limit };
    let jm;
    let tm;
    let neo;
    let engine: &dyn Engine = match name {
        "jm" => {
            jm = Jm::new(g);
            &jm
        }
        "tm" => {
            tm = Tm::new(g);
            &tm
        }
        _ => {
            neo = NeoLike::new(g);
            &neo
        }
    };
    let r = engine.evaluate(&q, &budget);
    eprintln!(
        "{}: {} occurrence(s) in {:?} [{}], {} intermediate tuple(s)",
        engine.name(),
        r.occurrences,
        r.total_time,
        r.status.code(),
        r.intermediate_tuples
    );
    write_stdout(&format!("{}\n", r.occurrences))?;
    Ok(ExitCode::SUCCESS)
}
