//! # rigmatch
//!
//! Hybrid graph pattern matching with runtime index graphs — a from-scratch
//! Rust reproduction of *"Evaluating Hybrid Graph Pattern Queries Using
//! Runtime Index Graphs"* (Wu, Theodoratos, Mamoulis, Lan; EDBT 2023).
//!
//! A *hybrid* pattern mixes **direct** edges (mapped to data-graph edges)
//! and **reachability** edges (mapped to paths). The matcher — **GM** —
//! evaluates such patterns under homomorphism semantics in two phases:
//! it first builds a *runtime index graph* (RIG) that losslessly and
//! compactly encodes the answer search space (refined by a new *double
//! simulation* filter), then enumerates occurrences with **MJoin**, a
//! worst-case-optimal multiway-intersection join that materializes no
//! intermediate results.
//!
//! ## Quick start
//!
//! ```
//! use rigmatch::prelude::*;
//!
//! // data graph: an author with a paper that transitively cites another
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(0); // author
//! let p1 = b.add_node(1); // VLDB paper
//! let p2 = b.add_node(2); // ICDE paper
//! b.add_edge(a, p1);
//! b.add_edge(p1, p2);
//! let g = b.build();
//!
//! // pattern: author -> VLDB paper =cites…=> ICDE paper
//! let mut q = PatternQuery::new(vec![0, 1, 2]);
//! q.add_edge(0, 1, EdgeKind::Direct);
//! q.add_edge(1, 2, EdgeKind::Reachability);
//!
//! let matcher = Matcher::new(&g);
//! let outcome = matcher.count(&q, &GmConfig::default());
//! assert_eq!(outcome.result.count, 1);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | data graphs (CSR + label inverted lists) |
//! | [`query`] | hybrid pattern queries, transitive reduction, templates |
//! | [`bitset`] | roaring-style compressed bitmaps |
//! | [`reach`] | reachability indexes (BFL, intervals, transitive closure) |
//! | [`sim`] | double simulation (FBSimBas / FBSimDag / FBSim) |
//! | [`rig`] | runtime index graphs and `BuildRIG` |
//! | [`mjoin`] | MJoin enumeration and search orders |
//! | [`core`] | the GM matcher facade |
//! | [`baselines`] | JM / TM and engine analogues used in the experiments |
//! | [`datasets`] | synthetic Table 2 dataset generators |

pub use rig_baselines as baselines;
pub use rig_bitset as bitset;
pub use rig_core as core;
pub use rig_datasets as datasets;
pub use rig_graph as graph;
pub use rig_index as rig;
pub use rig_mjoin as mjoin;
pub use rig_query as query;
pub use rig_reach as reach;
pub use rig_sim as sim;

/// The types most applications need.
pub mod prelude {
    pub use rig_core::{GmConfig, GmMetrics, Matcher, QueryOutcome, RunReport, RunStatus};
    pub use rig_graph::{DataGraph, GraphBuilder, Label, NodeId};
    pub use rig_mjoin::{
        BatchSink, CollectSink, CountSink, FirstKSink, FnSink, ParOptions, ResultSink, SearchOrder,
    };
    pub use rig_query::{transitive_reduction, EdgeKind, Flavor, PatternQuery, QNode, QueryClass};
}
