//! # rigmatch
//!
//! Hybrid graph pattern matching with runtime index graphs — a from-scratch
//! Rust reproduction of *"Evaluating Hybrid Graph Pattern Queries Using
//! Runtime Index Graphs"* (Wu, Theodoratos, Mamoulis, Lan; EDBT 2023).
//!
//! A *hybrid* pattern mixes **direct** edges (mapped to data-graph edges)
//! and **reachability** edges (mapped to paths). The matcher — **GM** —
//! evaluates such patterns under homomorphism semantics in two phases:
//! it first builds a *runtime index graph* (RIG) that losslessly and
//! compactly encodes the answer search space (refined by a new *double
//! simulation* filter), then enumerates occurrences with **MJoin**, a
//! worst-case-optimal multiway-intersection join that materializes no
//! intermediate results.
//!
//! ## Quick start
//!
//! Open a [`Session`] on a graph, write the pattern in **HPQL** (`->`
//! direct, `=>` reachability), prepare it once, run it as often as you
//! like — repeated executions reuse the session's cached RIG:
//!
//! ```
//! use rigmatch::prelude::*;
//!
//! // data graph: an author with a paper that transitively cites another
//! let mut b = GraphBuilder::new();
//! let a = b.add_named_node("Author");
//! let p1 = b.add_named_node("VldbPaper");
//! let p2 = b.add_named_node("IcdePaper");
//! b.add_edge(a, p1);
//! b.add_edge(p1, p2);
//! let session = Session::new(b.build());
//!
//! // pattern: author -> VLDB paper =cites…=> ICDE paper
//! let prepared = session
//!     .prepare("MATCH (a:Author)->(v:VldbPaper)=>(i:IcdePaper)")
//!     .expect("parses and validates");
//!
//! let outcome = prepared.run().count();
//! assert_eq!(outcome.result.count, 1);
//!
//! // the second execution skips RIG construction entirely
//! let warm = prepared.run().count();
//! assert!(warm.metrics.rig_from_cache);
//! assert_eq!(session.cache_stats().hits, 1);
//! ```
//!
//! The [`Run`](core::Run) builder carries every per-execution knob:
//! `prepared.run().limit(10).timeout(d).threads(4).order(o)` with
//! terminals `.count()`, `.collect(max)`, `.stream(sink)`,
//! `.par_stream(make_sink)` and `.explain()`. Patterns can also be built
//! programmatically as [`PatternQuery`](query::PatternQuery) values and
//! prepared the same way — both paths produce identical plans (and share
//! one plan-cache entry). See `docs/api.md` for the full grammar and a
//! tour.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | data graphs (CSR + label inverted lists + label dictionary) |
//! | [`query`] | hybrid pattern queries, HPQL, transitive reduction, templates |
//! | [`bitset`] | roaring-style compressed bitmaps |
//! | [`reach`] | reachability indexes (BFL, intervals, transitive closure) |
//! | [`sim`] | double simulation (FBSimBas / FBSimDag / FBSim) |
//! | [`rig`] | runtime index graphs and `BuildRIG` |
//! | [`mjoin`] | MJoin enumeration and search orders |
//! | [`shard`] | sharded execution: graph partitioning, scatter-gather MJoin |
//! | [`core`] | the [`Session`] API, unified [`Error`], the GM pipeline |
//! | [`storage`] | durability: WAL, binary snapshots, crash recovery |
//! | [`server`] | concurrent HTTP/NDJSON query server (`rigmatch serve`) |
//! | [`baselines`] | JM / TM and engine analogues used in the experiments |
//! | [`datasets`] | synthetic Table 2 dataset generators |

pub use rig_baselines as baselines;
pub use rig_bitset as bitset;
pub use rig_core as core;
pub use rig_datasets as datasets;
pub use rig_graph as graph;
pub use rig_index as rig;
pub use rig_mjoin as mjoin;
pub use rig_query as query;
pub use rig_reach as reach;
pub use rig_server as server;
pub use rig_shard as shard;
pub use rig_sim as sim;
pub use rig_storage as storage;

pub use rig_core::{Error, ErrorKind, Session};

/// The types most applications need.
pub mod prelude {
    pub use rig_core::{
        CacheStats, CommitSummary, CompactionPolicy, Durability, Error, ErrorKind, Explain,
        GmConfig, GmMetrics, GraphTxn, Partitioner, Prepared, QueryOutcome, RecoveryReport, Run,
        RunReport, RunStatus, Session, ShardOptions, ShardingStats, StoreOptions, StoreStats,
    };
    pub use rig_graph::{
        parse_mutations, DataGraph, GraphBuilder, GraphView, Label, MutationOp, NodeId, Snapshot,
    };
    pub use rig_mjoin::{
        BatchSink, CollectSink, CountSink, FirstKSink, FnSink, ParOptions, ResultSink, SearchOrder,
    };
    pub use rig_query::{
        parse_hpql, to_hpql, transitive_reduction, EdgeKind, Flavor, HpqlQuery, PatternQuery,
        QNode, QueryClass,
    };
}
