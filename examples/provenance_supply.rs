//! The Fig. 1(c)/(d) scenarios: supply-chain provenance. Find a supplier,
//! a retailer, a whole-seller and a bank such that the supplier directly
//! or indirectly supplies both the retailer and the whole-seller, and both
//! of them receive services *directly* from the same bank.
//!
//! Demonstrates: `Session::prepare` + `Run::explain` on an HPQL query with
//! a deliberately redundant reachability edge (§3 transitive reduction
//! removes it before evaluation), and the engine comparison API (GM vs JM
//! vs TM on the same workload — the harnesses share one graph through an
//! `Arc`).
//!
//! Run with: `cargo run --example provenance_supply`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::baselines::{Budget, Engine, GmEngine, Jm, Tm};
use rigmatch::core::Session;
use rigmatch::prelude::*;

fn build_chain(seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let suppliers: Vec<NodeId> = (0..40).map(|_| b.add_named_node("Supplier")).collect();
    let depots: Vec<NodeId> = (0..200).map(|_| b.add_named_node("Depot")).collect();
    let retailers: Vec<NodeId> = (0..60).map(|_| b.add_named_node("Retailer")).collect();
    let wholesellers: Vec<NodeId> = (0..60).map(|_| b.add_named_node("WholeSeller")).collect();
    let banks: Vec<NodeId> = (0..10).map(|_| b.add_named_node("Bank")).collect();
    // suppliers feed depots, depots feed depots/retailers/whole-sellers
    for &s in &suppliers {
        for _ in 0..3 {
            b.add_edge(s, depots[rng.gen_range(0..depots.len())]);
        }
    }
    for &d in &depots {
        for _ in 0..2 {
            match rng.gen_range(0..3) {
                0 => b.add_edge(d, depots[rng.gen_range(0..depots.len())]),
                1 => b.add_edge(d, retailers[rng.gen_range(0..retailers.len())]),
                _ => b.add_edge(d, wholesellers[rng.gen_range(0..wholesellers.len())]),
            }
        }
    }
    // banks serve retailers and whole-sellers directly
    for &r in retailers.iter().chain(wholesellers.iter()) {
        b.add_edge(banks[rng.gen_range(0..banks.len())], r);
    }
    b.build()
}

// The hybrid pattern, with one deliberately redundant reachability edge:
// supplier => retailer is implied by supplier -> depot =*=> retailer, so
// §3 transitive reduction drops it before evaluation.
const PATTERN: &str = "MATCH (s:Supplier)->(d:Depot)=>(r:Retailer), \
                       (s)=>(r), (s)=>(w:WholeSeller), \
                       (b:Bank)->(r), (b)->(w)";

fn main() {
    let g = Arc::new(build_chain(11));
    println!("supply chain: {:?}", g);

    // One session for the application path; the engine harnesses below
    // borrow the same graph through the Arc.
    let session = Session::new(Arc::clone(&g));
    let prepared = session.prepare(PATTERN).expect("valid HPQL");
    print!("{}", prepared.run().explain());
    assert_eq!(prepared.edges_reduced(), 1);

    let outcome = prepared.run().count();
    println!("GM via Session: {} occurrences (RIG cached: {})", outcome.result.count, {
        // explain() above built and cached the plan, so this run hit it
        outcome.metrics.rig_from_cache
    });
    assert!(outcome.metrics.rig_from_cache);

    // Evaluate with all three approaches on the same budget.
    let q = prepared.query().clone();
    let budget = Budget {
        timeout: Some(std::time::Duration::from_secs(30)),
        max_intermediate: Some(5_000_000),
        match_limit: Some(100_000),
    };
    let gm = GmEngine::new(Arc::clone(&g));
    let jm = Jm::new(&g);
    let tm = Tm::new(&g);
    for engine in [&gm as &dyn Engine, &jm, &tm] {
        let r = engine.evaluate(&q, &budget);
        println!(
            "{:>3}: {:>9} occurrences, {:>9} intermediate tuples, {:.3} ms [{}]",
            engine.name(),
            r.occurrences,
            r.intermediate_tuples,
            r.total_time.as_secs_f64() * 1e3,
            r.status.code()
        );
    }
    let a = gm.evaluate(&q, &budget).occurrences;
    let b = jm.evaluate(&q, &budget).occurrences;
    let c = tm.evaluate(&q, &budget).occurrences;
    assert_eq!(a, outcome.result.count);
    assert_eq!(a, b);
    assert_eq!(a, c);
}
