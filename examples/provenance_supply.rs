//! The Fig. 1(c)/(d) scenarios: supply-chain provenance. Find a supplier,
//! a retailer, a whole-seller and a bank such that the supplier directly
//! or indirectly supplies both the retailer and the whole-seller, and both
//! of them receive services *directly* from the same bank.
//!
//! Demonstrates: query transitive reduction (§3) — we deliberately write a
//! redundant reachability edge and show GM removing it — and the engine
//! comparison API (GM vs JM vs TM on the same workload).
//!
//! Run with: `cargo run --example provenance_supply`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::baselines::{Budget, Engine, GmEngine, Jm, Tm};
use rigmatch::prelude::*;

const SUPPLIER: Label = 0;
const RETAILER: Label = 1;
const WHOLESELLER: Label = 2;
const BANK: Label = 3;
const DEPOT: Label = 4; // intermediate hops in the supply chain

fn build_chain(seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let suppliers: Vec<NodeId> = (0..40).map(|_| b.add_node(SUPPLIER)).collect();
    let depots: Vec<NodeId> = (0..200).map(|_| b.add_node(DEPOT)).collect();
    let retailers: Vec<NodeId> = (0..60).map(|_| b.add_node(RETAILER)).collect();
    let wholesellers: Vec<NodeId> = (0..60).map(|_| b.add_node(WHOLESELLER)).collect();
    let banks: Vec<NodeId> = (0..10).map(|_| b.add_node(BANK)).collect();
    // suppliers feed depots, depots feed depots/retailers/whole-sellers
    for &s in &suppliers {
        for _ in 0..3 {
            b.add_edge(s, depots[rng.gen_range(0..depots.len())]);
        }
    }
    for &d in &depots {
        for _ in 0..2 {
            match rng.gen_range(0..3) {
                0 => b.add_edge(d, depots[rng.gen_range(0..depots.len())]),
                1 => b.add_edge(d, retailers[rng.gen_range(0..retailers.len())]),
                _ => b.add_edge(d, wholesellers[rng.gen_range(0..wholesellers.len())]),
            }
        }
    }
    // banks serve retailers and whole-sellers directly
    for &r in retailers.iter().chain(wholesellers.iter()) {
        b.add_edge(banks[rng.gen_range(0..banks.len())], r);
    }
    b.build()
}

fn main() {
    let g = build_chain(11);
    println!("supply chain: {:?}", g);

    // The hybrid pattern, with one deliberately redundant reachability
    // edge (supplier => retailer is implied by supplier => whole-seller?
    // no — but supplier => depot-chain => retailer makes the long edge
    // (0,1) redundant once we also add the two-hop path below).
    let mut q = PatternQuery::new(vec![SUPPLIER, RETAILER, WHOLESELLER, BANK, DEPOT]);
    q.add_edge(0, 4, EdgeKind::Direct); // supplier -> depot
    q.add_edge(4, 1, EdgeKind::Reachability); // depot =*=> retailer
    q.add_edge(0, 1, EdgeKind::Reachability); // redundant: implied by path
    q.add_edge(0, 2, EdgeKind::Reachability); // supplier =*=> whole-seller
    q.add_edge(3, 1, EdgeKind::Direct); // bank -> retailer
    q.add_edge(3, 2, EdgeKind::Direct); // bank -> whole-seller
    let reduced = transitive_reduction(&q);
    println!(
        "transitive reduction removed {} of {} edges",
        q.num_edges() - reduced.num_edges(),
        q.num_edges()
    );
    assert_eq!(q.num_edges() - reduced.num_edges(), 1);

    // Evaluate with all three approaches on the same budget.
    let budget = Budget {
        timeout: Some(std::time::Duration::from_secs(30)),
        max_intermediate: Some(5_000_000),
        match_limit: Some(100_000),
    };
    let gm = GmEngine::new(&g);
    let jm = Jm::new(&g);
    let tm = Tm::new(&g);
    for engine in [&gm as &dyn Engine, &jm, &tm] {
        let r = engine.evaluate(&q, &budget);
        println!(
            "{:>3}: {:>9} occurrences, {:>9} intermediate tuples, {:.3} ms [{}]",
            engine.name(),
            r.occurrences,
            r.intermediate_tuples,
            r.total_time.as_secs_f64() * 1e3,
            r.status.code()
        );
    }
    let a = gm.evaluate(&q, &budget).occurrences;
    let b = jm.evaluate(&q, &budget).occurrences;
    let c = tm.evaluate(&q, &budget).occurrences;
    assert_eq!(a, b);
    assert_eq!(a, c);
}
