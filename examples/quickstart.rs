//! Quickstart: evaluate the paper's running example (Fig. 2) end to end —
//! the Session API with an HPQL text query, then a peek under the hood at
//! the double simulation and the RIG, and finally the plan cache at work.
//!
//! Run with: `cargo run --example quickstart`

use rigmatch::core::Session;
use rigmatch::datasets::examples::fig2_graph;
use rigmatch::reach::BflIndex;
use rigmatch::rig::{build_rig, RigOptions};
use rigmatch::sim::{double_simulation, SimContext, SimOptions};

fn main() {
    // The Fig. 2 data graph: three 'a' nodes, four 'b', three 'c' (the
    // builder records label names, so HPQL can say (x:a) instead of (x:0)).
    let g = fig2_graph();
    println!("data graph: {:?}", g);

    // The Fig. 2 query as HPQL: A -> B (direct), B => C (path), A -> C
    // (direct). One session owns the graph (a clone here, so the example
    // can keep peeking at `g` below), its reachability index and the
    // plan cache.
    let session = Session::new(g.clone());
    let prepared = session.prepare("MATCH (x:a)->(y:b)=>(z:c), (x)->(z)").expect("valid HPQL");
    println!("query: {}", prepared.to_hpql());

    // --- the answer, via the fluent run builder ---
    let (tuples, outcome) = prepared.run().collect(100);
    println!("answer ({} occurrences):", outcome.result.count);
    for t in &tuples {
        println!("  x={} y={} z={}", t[0], t[1], t[2]);
    }
    assert_eq!(outcome.result.count, 2);

    // --- under the hood, phase 1a: double simulation (§4.2) ---
    let q = prepared.reduced();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, q, &bfl);
    let sim = double_simulation(&ctx, &SimOptions::exact());
    for (i, fb) in sim.fb.iter().enumerate() {
        println!("FB({}) = {:?}", ["A", "B", "C"][i], fb);
    }

    // --- phase 1b: the runtime index graph (Alg. 4) ---
    let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
    println!(
        "RIG: {} candidate nodes, {} candidate edges ({}% of |G|)",
        rig.stats.node_count,
        rig.stats.edge_count,
        (100.0 * rig.size_ratio(&g)).round()
    );

    // --- the plan cache: the second run skips the RIG build entirely ---
    let warm = prepared.run().count();
    assert!(warm.metrics.rig_from_cache);
    let stats = session.cache_stats();
    println!(
        "plan cache: {} hit(s) / {} miss(es); warm run total {:.3} ms \
         (matching {:.3} ms, enumeration {:.3} ms)",
        stats.hits,
        stats.misses,
        warm.metrics.total_time.as_secs_f64() * 1e3,
        warm.metrics.matching_time().as_secs_f64() * 1e3,
        warm.metrics.enumeration_time.as_secs_f64() * 1e3,
    );
}
