//! Quickstart: evaluate the paper's running example (Fig. 2) end to end,
//! printing the double simulation, the RIG, and the answer.
//!
//! Run with: `cargo run --example quickstart`

use rigmatch::core::{GmConfig, Matcher};
use rigmatch::datasets::examples::fig2_graph;
use rigmatch::query::fig2_query;
use rigmatch::reach::BflIndex;
use rigmatch::rig::{build_rig, RigOptions};
use rigmatch::sim::{double_simulation, SimContext, SimOptions};

fn main() {
    // The Fig. 2 data graph: three 'a' nodes, four 'b', three 'c'.
    let g = fig2_graph();
    println!("data graph: {:?}", g);

    // The Fig. 2 query: A -> B (direct), A -> C (direct), B => C (path).
    let q = fig2_query();
    println!(
        "query: {} nodes, {} edges ({} reachability)",
        q.num_nodes(),
        q.num_edges(),
        q.reachability_edge_count()
    );

    // --- phase 1a: double simulation (the node filter of §4.2) ---
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let sim = double_simulation(&ctx, &SimOptions::exact());
    for (i, fb) in sim.fb.iter().enumerate() {
        println!("FB({}) = {:?}", ["A", "B", "C"][i], fb);
    }

    // --- phase 1b: the runtime index graph (Alg. 4) ---
    let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
    println!(
        "RIG: {} candidate nodes, {} candidate edges ({}% of |G|)",
        rig.stats.node_count,
        rig.stats.edge_count,
        (100.0 * rig.size_ratio(&g)).round()
    );

    // --- phase 2: enumeration through the high-level facade ---
    let matcher = Matcher::new(&g);
    let (tuples, outcome) = matcher.collect(&q, &GmConfig::default(), 100);
    println!("answer ({} occurrences):", outcome.result.count);
    for t in &tuples {
        println!("  A={} B={} C={}", t[0], t[1], t[2]);
    }
    assert_eq!(outcome.result.count, 2);
    println!(
        "total {:.3} ms (matching {:.3} ms, enumeration {:.3} ms)",
        outcome.metrics.total_time.as_secs_f64() * 1e3,
        outcome.metrics.matching_time().as_secs_f64() * 1e3,
        outcome.metrics.enumeration_time.as_secs_f64() * 1e3,
    );
}
