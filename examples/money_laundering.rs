//! The Fig. 1(e) scenario: detecting a money-laundering shape — an
//! individual moving funds through direct transfers and *chains* of
//! transfers between legal and illegal accounts, ending back at an account
//! controlled by the same individual.
//!
//! The pattern is cyclic in the undirected sense and hybrid: the "layering"
//! steps are reachability edges (arbitrarily long transfer chains), the
//! "placement" and "integration" steps are direct transfers.
//!
//! Run with: `cargo run --example money_laundering`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::prelude::*;

const PERSON: Label = 0;
const LEGAL: Label = 1;
const ILLEGAL: Label = 2;

fn build_transfers(people: usize, accounts: usize, transfers: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let persons: Vec<NodeId> = (0..people).map(|_| b.add_node(PERSON)).collect();
    let accts: Vec<NodeId> = (0..accounts)
        .map(|_| b.add_node(if rng.gen_bool(0.7) { LEGAL } else { ILLEGAL }))
        .collect();
    // ownership: person -> account (direct)
    for &a in &accts {
        let owner = persons[rng.gen_range(0..persons.len())];
        b.add_edge(owner, a);
    }
    // transfers: account -> account
    for _ in 0..transfers {
        let x = accts[rng.gen_range(0..accts.len())];
        let y = accts[rng.gen_range(0..accts.len())];
        if x != y {
            b.add_edge(x, y);
        }
    }
    b.build()
}

fn main() {
    let g = build_transfers(50, 400, 1200, 7);
    println!("transfer graph: {:?}", g);

    // Pattern:
    //   person -> legal account          (direct: owns/controls)
    //   person -> illegal account        (direct: owns/controls)
    //   legal  => illegal                (reachability: layered transfers)
    //   illegal -> legal2 (direct hop), legal2 back under scrutiny
    let mut q = PatternQuery::new(vec![PERSON, LEGAL, ILLEGAL, LEGAL]);
    q.add_edge(0, 1, EdgeKind::Direct); // owns placement account
    q.add_edge(0, 3, EdgeKind::Direct); // owns integration account
    q.add_edge(1, 2, EdgeKind::Reachability); // layering chain
    q.add_edge(2, 3, EdgeKind::Reachability); // chain back to own account
    println!("pattern class: {:?}, {} reachability edges", q.class(), q.reachability_edge_count());

    let matcher = Matcher::new(&g);
    // Morsel-driven parallel evaluation, streaming into per-worker
    // first-k sinks: nothing beyond the 5 reported structures is ever
    // materialized, and the workers stop as soon as enough are found.
    let mut cfg = GmConfig::default();
    cfg.rig = cfg.rig.with_build_threads(2); // parallel RIG expansion too
    let (sinks, outcome) =
        matcher.par_run(&q, &cfg, &ParOptions::with_threads(2), |_| FirstKSink::new(5));
    let mut tuples: Vec<Vec<NodeId>> = sinks.into_iter().flat_map(|s| s.tuples).collect();
    tuples.sort();
    tuples.truncate(5);
    // With per-worker first-k sinks the engine may count a few more
    // matches than are kept before the stop flag propagates, so report
    // both numbers honestly.
    println!(
        "showing {} suspicious round-trip structures ({} found before early stop, {:.3} ms)",
        tuples.len(),
        outcome.result.count,
        outcome.metrics.total_time.as_secs_f64() * 1e3
    );
    for t in &tuples {
        println!("  person {} : legal {} => illegal {} => legal {}", t[0], t[1], t[2], t[3]);
    }

    // Show the RIG compression: candidate space vs raw label space.
    let raw: u64 = q.labels().iter().map(|&l| g.nodes_with_label(l).len() as u64).sum();
    println!(
        "RIG kept {} candidate nodes out of {} label-matched nodes",
        outcome.metrics.rig_stats.node_count, raw
    );
}
