//! The Fig. 1(e) scenario: detecting a money-laundering shape — an
//! individual moving funds through direct transfers and *chains* of
//! transfers between legal and illegal accounts, ending back at an account
//! controlled by the same individual.
//!
//! The pattern is cyclic in the undirected sense and hybrid: the "layering"
//! steps are reachability edges (arbitrarily long transfer chains), the
//! "placement" and "integration" steps are direct transfers. It is written
//! as HPQL and executed through the `Session` run builder — here with the
//! morsel-driven parallel engine and per-worker first-k sinks.
//!
//! Run with: `cargo run --example money_laundering`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::core::Session;
use rigmatch::prelude::*;

fn build_transfers(people: usize, accounts: usize, transfers: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let persons: Vec<NodeId> = (0..people).map(|_| b.add_named_node("Person")).collect();
    let accts: Vec<NodeId> = (0..accounts)
        .map(|_| b.add_named_node(if rng.gen_bool(0.7) { "Legal" } else { "Illegal" }))
        .collect();
    // ownership: person -> account (direct)
    for &a in &accts {
        let owner = persons[rng.gen_range(0..persons.len())];
        b.add_edge(owner, a);
    }
    // transfers: account -> account
    for _ in 0..transfers {
        let x = accts[rng.gen_range(0..accts.len())];
        let y = accts[rng.gen_range(0..accts.len())];
        if x != y {
            b.add_edge(x, y);
        }
    }
    b.build()
}

fn main() {
    // parallel RIG expansion too: 2 build threads in the session config
    let mut cfg = GmConfig::default();
    cfg.rig = cfg.rig.with_build_threads(2);
    let session = Session::with_config(build_transfers(50, 400, 1200, 7), cfg);
    println!("transfer graph: {:?}", session.graph());

    // Pattern:
    //   person -> legal account     (direct: owns/controls)
    //   person -> legal2 account    (direct: owns/controls)
    //   legal  => illegal           (reachability: layered transfers)
    //   illegal => legal2           (reachability: chain back to own account)
    let prepared = session
        .prepare("MATCH (p:Person)->(src:Legal)=>(mid:Illegal)=>(dst:Legal), (p)->(dst)")
        .expect("valid HPQL");
    let q = prepared.query();
    println!("pattern class: {:?}, {} reachability edges", q.class(), q.reachability_edge_count());

    // Morsel-driven parallel evaluation, streaming into per-worker
    // first-k sinks: nothing beyond the 5 reported structures is ever
    // materialized, and the workers stop as soon as enough are found.
    let (sinks, outcome) = prepared.run().threads(2).par_stream(|_| FirstKSink::new(5));
    let mut tuples: Vec<Vec<NodeId>> = sinks.into_iter().flat_map(|s| s.tuples).collect();
    tuples.sort();
    tuples.truncate(5);
    // With per-worker first-k sinks the engine may count a few more
    // matches than are kept before the stop flag propagates, so report
    // both numbers honestly.
    println!(
        "showing {} suspicious round-trip structures ({} found before early stop, {:.3} ms)",
        tuples.len(),
        outcome.result.count,
        outcome.metrics.total_time.as_secs_f64() * 1e3
    );
    for t in &tuples {
        println!("  person {} : legal {} => illegal {} => legal {}", t[0], t[1], t[2], t[3]);
    }

    // Show the RIG compression: candidate space vs raw label space.
    let g = session.graph();
    let raw: u64 = q.labels().iter().map(|&l| g.nodes_with_label(l).len() as u64).sum();
    println!(
        "RIG kept {} candidate nodes out of {} label-matched nodes",
        outcome.metrics.rig_stats.node_count, raw
    );
}
