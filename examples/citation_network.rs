//! The Fig. 1(a) scenario: a citation network categorized by year and
//! venue. Find authors who, in a given year, have a VLDB paper that
//! directly or transitively cites an ICDE paper of the same year by the
//! same author — a query needing *both* direct edges (author–paper,
//! paper–venue-year) and a reachability edge (citation chains).
//!
//! Run with: `cargo run --example citation_network`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::prelude::*;

const AUTHOR: Label = 0;
const VLDB_PAPER: Label = 1;
const ICDE_PAPER: Label = 2;

/// Builds a synthetic citation network: authors write papers at one of two
/// venues; papers cite older papers forming chains.
fn build_network(authors: usize, papers_per_author: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut author_ids = Vec::new();
    let mut paper_ids: Vec<NodeId> = Vec::new();
    for _ in 0..authors {
        author_ids.push(b.add_node(AUTHOR));
    }
    for &a in &author_ids {
        for _ in 0..papers_per_author {
            let venue = if rng.gen_bool(0.5) { VLDB_PAPER } else { ICDE_PAPER };
            let p = b.add_node(venue);
            b.add_edge(a, p); // author -> paper (direct "wrote")
                              // citations form long chains: mostly cite the newest paper,
                              // so most venue-to-venue connections are *indirect*
            if !paper_ids.is_empty() {
                let cited = if rng.gen_bool(0.8) {
                    *paper_ids.last().unwrap()
                } else {
                    paper_ids[rng.gen_range(0..paper_ids.len())]
                };
                if cited != p {
                    b.add_edge(p, cited);
                }
            }
            paper_ids.push(p);
        }
    }
    b.build()
}

fn main() {
    let g = build_network(200, 6, 2023);
    println!("citation network: {:?}", g);

    // Pattern (Fig. 1(a) without the year node, which our labels fold in):
    //   author -> VLDB paper      (direct: wrote)
    //   author -> ICDE paper      (direct: wrote)
    //   VLDB paper => ICDE paper  (reachability: citation chain)
    let mut q = PatternQuery::new(vec![AUTHOR, VLDB_PAPER, ICDE_PAPER]);
    q.add_edge(0, 1, EdgeKind::Direct);
    q.add_edge(0, 2, EdgeKind::Direct);
    q.add_edge(1, 2, EdgeKind::Reachability);
    assert_eq!(q.class(), QueryClass::Clique);

    let matcher = Matcher::new(&g);
    let hybrid = matcher.count(&q, &GmConfig::default());
    let (tuples, _) = matcher.collect(&q, &GmConfig::default(), 5);
    println!(
        "{} self-citing author occurrences found in {:.3} ms; first {}:",
        hybrid.result.count,
        hybrid.metrics.total_time.as_secs_f64() * 1e3,
        tuples.len()
    );
    for t in &tuples {
        println!("  author {} : VLDB paper {} =cites…=> ICDE paper {}", t[0], t[1], t[2]);
    }

    // Contrast with the direct-only variant: citation chains are missed.
    let mut q_direct = PatternQuery::new(vec![AUTHOR, VLDB_PAPER, ICDE_PAPER]);
    q_direct.add_edge(0, 1, EdgeKind::Direct);
    q_direct.add_edge(0, 2, EdgeKind::Direct);
    q_direct.add_edge(1, 2, EdgeKind::Direct);
    let direct = matcher.count(&q_direct, &GmConfig::default());
    println!(
        "direct-only variant finds {} occurrences — {} hidden matches needed edge-to-path",
        direct.result.count,
        hybrid.result.count - direct.result.count
    );
    assert!(direct.result.count <= hybrid.result.count);
}
