//! The Fig. 1(a) scenario: a citation network categorized by year and
//! venue. Find authors who, in a given year, have a VLDB paper that
//! directly or transitively cites an ICDE paper of the same year by the
//! same author — a query needing *both* direct edges (author–paper,
//! paper–venue-year) and a reachability edge (citation chains).
//!
//! The pattern is written in HPQL against the graph's label-name
//! dictionary and served through a `Session`, whose plan cache makes the
//! repeated variant queries below skip RIG construction.
//!
//! Run with: `cargo run --example citation_network`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigmatch::core::Session;
use rigmatch::prelude::*;

/// Builds a synthetic citation network: authors write papers at one of two
/// venues; papers cite older papers forming chains. Labels are registered
/// by *name* — that is what HPQL queries resolve against.
fn build_network(authors: usize, papers_per_author: usize, seed: u64) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut author_ids = Vec::new();
    let mut paper_ids: Vec<NodeId> = Vec::new();
    for _ in 0..authors {
        author_ids.push(b.add_named_node("Author"));
    }
    for &a in &author_ids {
        for _ in 0..papers_per_author {
            let venue = if rng.gen_bool(0.5) { "VldbPaper" } else { "IcdePaper" };
            let p = b.add_named_node(venue);
            b.add_edge(a, p); // author -> paper (direct "wrote")
                              // citations form long chains: mostly cite the newest paper,
                              // so most venue-to-venue connections are *indirect*
            if !paper_ids.is_empty() {
                let cited = if rng.gen_bool(0.8) {
                    *paper_ids.last().unwrap()
                } else {
                    paper_ids[rng.gen_range(0..paper_ids.len())]
                };
                if cited != p {
                    b.add_edge(p, cited);
                }
            }
            paper_ids.push(p);
        }
    }
    b.build()
}

fn main() {
    let session = Session::new(build_network(200, 6, 2023));
    println!("citation network: {:?}", session.graph());

    // Pattern (Fig. 1(a) without the year node, which our labels fold in):
    //   author -> VLDB paper      (direct: wrote)
    //   author -> ICDE paper      (direct: wrote)
    //   VLDB paper => ICDE paper  (reachability: citation chain)
    let hybrid = session
        .prepare("MATCH (a:Author)->(v:VldbPaper)=>(i:IcdePaper), (a)->(i)")
        .expect("valid HPQL");
    assert_eq!(hybrid.query().class(), QueryClass::Clique);

    let outcome = hybrid.run().count();
    let (tuples, _) = hybrid.run().collect(5);
    println!(
        "{} self-citing author occurrences found in {:.3} ms; first {}:",
        outcome.result.count,
        outcome.metrics.total_time.as_secs_f64() * 1e3,
        tuples.len()
    );
    for t in &tuples {
        println!("  author {} : VLDB paper {} =cites…=> ICDE paper {}", t[0], t[1], t[2]);
    }
    // the collect() above reused the count()'s cached RIG
    assert_eq!(session.cache_stats().hits, 1);

    // Contrast with the direct-only variant: citation chains are missed.
    let direct_only = session
        .prepare("MATCH (a:Author)->(v:VldbPaper)->(i:IcdePaper), (a)->(i)")
        .expect("valid HPQL");
    let direct = direct_only.run().count();
    println!(
        "direct-only variant finds {} occurrences — {} hidden matches needed edge-to-path",
        direct.result.count,
        outcome.result.count - direct.result.count
    );
    assert!(direct.result.count <= outcome.result.count);
}
