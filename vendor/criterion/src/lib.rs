//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the macro entry points and the `Criterion` / `Bencher` API
//! surface of criterion 0.5, backed by a plain `std::time::Instant` timing
//! loop: for each benchmark it warms up, then runs `sample_size` samples
//! and prints mean / min / max nanoseconds per iteration to stdout. No
//! statistics, plots or regression tracking — just honest wall-clock
//! numbers so `cargo bench` works offline.

use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample batching policy for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_SMOKE=1 switches to a single-shot configuration (one
        // sample, minimal warm-up) so CI can assert every benchmark still
        // *runs* without paying measurement-quality time.
        if std::env::var_os("CRITERION_SMOKE").is_some() {
            return Criterion {
                sample_size: 1,
                measurement_time: Duration::from_millis(20),
                warm_up_time: Duration::from_millis(5),
            };
        }
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up doubles as calibration of iterations-per-sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter) as u64).clamp(1, 1_000_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup runs outside the timed section, one input per iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            hint::black_box(routine(input));
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                hint::black_box(routine(input));
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let min = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        println!("{id:<40} mean {} min {} max {}", fmt_ns(mean), fmt_ns(min), fmt_ns(max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
