//! Value-generation strategies. Unlike real proptest there is no value
//! tree / shrinking: a strategy is just a deterministic function of an RNG.

use rand::rngs::StdRng;
use rand::Rng;

pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).new_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        // bounded rejection sampling; a filter this selective is a test bug
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive values", self.reason);
    }
}

#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}
