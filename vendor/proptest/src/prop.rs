//! The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Accepted sizes for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `prop::bool::ANY` — a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod num {
    /// `prop::num::u32::ANY` etc. — full-range integers.
    macro_rules! num_mod {
        ($($m:ident : $t:ty),*) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use rand::rngs::StdRng;
                use rand::Rng;

                #[derive(Debug, Clone, Copy)]
                pub struct Any;
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn new_value(&self, rng: &mut StdRng) -> $t {
                        rng.gen::<$t>()
                    }
                }
            }
        )*};
    }
    num_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
}
