//! Case orchestration: config, per-case RNG derivation, failure type.

use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property check: carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub struct TestRunner {
    cases: u32,
    base_seed: u64,
    case_seed: u64,
    rng: StdRng,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                s.strip_prefix("0x")
                    .map_or_else(|| s.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
            })
            .unwrap_or_else(|| fnv1a(test_name));
        TestRunner {
            cases: config.cases,
            base_seed,
            case_seed: base_seed,
            rng: StdRng::seed_from_u64(base_seed),
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn begin_case(&mut self, case: u32) {
        self.case_seed =
            self.base_seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.rng = StdRng::seed_from_u64(self.case_seed);
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    pub fn case_seed(&self) -> u64 {
        self.case_seed
    }
}
