//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate, none of which the workspace's tests
//! rely on: inputs are generated from a deterministic per-test RNG (seeded
//! by test name, overridable with `PROPTEST_SEED`), and failing cases are
//! reported with their case index and seed instead of being *shrunk* to a
//! minimal example. Rerunning with the printed seed reproduces the case.

pub mod prop;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each `fn name(pat in strategy, ...) { body }` item as a `#[test]`
/// over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(cfg, stringify!($name));
                for case in 0..runner.cases() {
                    runner.begin_case(case);
                    $(let $pat =
                        $crate::strategy::Strategy::new_value(&($strat), runner.rng());)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, runner.cases(), runner.case_seed(), err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)` — fails the
/// current case (returns `Err` from the generated closure) instead of
/// panicking directly, mirroring real proptest.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}: `{:?}` != `{:?}`", format!($($fmt)*), lhs, rhs
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// `prop_oneof![a, b, c]` — uniform choice between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
