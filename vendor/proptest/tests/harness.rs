//! Self-tests for the stand-in harness: the `proptest!` macro must actually
//! run the configured number of cases, feed them diverse inputs, and route
//! `prop_assert!` failures into a panic that names the failing case.

use proptest::prelude::*;
use std::cell::Cell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

thread_local! {
    static CALLS: Cell<u32> = const { Cell::new(0) };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn runs_exactly_the_configured_cases(_v in 0u32..100) {
        CALLS.with(|c| c.set(c.get() + 1));
    }
}

#[test]
fn case_count_observed() {
    CALLS.with(|c| c.set(0));
    runs_exactly_the_configured_cases();
    assert_eq!(CALLS.with(|c| c.get()), 25);
}

#[test]
fn strategies_generate_diverse_in_range_values() {
    let mut runner =
        proptest::test_runner::TestRunner::new(ProptestConfig::with_cases(200), "diversity_probe");
    let strat = prop::collection::vec(prop_oneof![0u32..10, 500u32..510], 0..20);
    let mut seen_values = BTreeSet::new();
    let mut seen_lens = BTreeSet::new();
    for case in 0..200 {
        runner.begin_case(case);
        let v = strat.new_value(runner.rng());
        assert!(v.len() < 20);
        seen_lens.insert(v.len());
        for x in v {
            assert!((0..10).contains(&x) || (500..510).contains(&x), "x={x}");
            seen_values.insert(x);
        }
    }
    assert!(seen_lens.len() > 10, "lengths not diverse: {seen_lens:?}");
    assert!(seen_values.len() > 15, "values not diverse: {seen_values:?}");
}

#[test]
fn same_seed_reproduces_same_inputs() {
    let strat = (0u64..1_000_000, prop::collection::vec(prop::bool::ANY, 1..30));
    let draw = |seed_name: &str| {
        let mut runner =
            proptest::test_runner::TestRunner::new(ProptestConfig::with_cases(10), seed_name);
        (0..10)
            .map(|case| {
                runner.begin_case(case);
                strat.new_value(runner.rng())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(draw("alpha"), draw("alpha"));
    assert_ne!(draw("alpha"), draw("beta"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[allow(dead_code)] // invoked via catch_unwind below, not as a #[test]
    fn deliberately_failing_property(v in 10u32..20) {
        prop_assert!(v < 15, "v was {}", v);
    }
}

#[test]
fn failed_assertion_panics_with_case_info() {
    let err = catch_unwind(AssertUnwindSafe(deliberately_failing_property))
        .expect_err("property should fail within 5 cases");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"?").to_string());
    assert!(msg.contains("deliberately_failing_property"), "msg={msg}");
    assert!(msg.contains("seed"), "msg={msg}");
}
