//! Sequence helpers (`SliceRandom`).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = sample_below(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[sample_below(rng, self.len())])
        }
    }
}

fn sample_below<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    ((rng.next_u64() as u128 * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1u8, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
