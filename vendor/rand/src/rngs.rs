//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ seeded via SplitMix64 — the stand-in for `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is a fixed point; splitmix64 never
        // produces four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_full_span_no_overflow() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let _: u8 = rng.gen_range(0..=u8::MAX);
            let v: u8 = rng.gen_range(250..=u8::MAX);
            assert!(v >= 250);
            let w: i32 = rng.gen_range(i32::MAX - 3..=i32::MAX);
            assert!(w >= i32::MAX - 3);
            let x: u64 = rng.gen_range(7..=7);
            assert_eq!(x, 7);
        }
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }
}
