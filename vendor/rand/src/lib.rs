//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 (the reference
//! seeding recipe), so streams are deterministic in the seed, statistically
//! solid for test/workload generation, and independent of the real crate's
//! stream (absolute generated values differ from rand 0.8; everything in
//! this workspace only relies on determinism, not on specific streams).

pub mod rngs;
pub mod seq;

/// Sources of randomness: the only required method is [`RngCore::next_u64`].
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable "from the standard distribution" (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                // Lemire-style widening multiply: unbiased enough for tests
                // and workload generation without a rejection loop.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // span in u128 so `..=MAX` can't overflow the narrow type
                let span = end as u128 - start as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}
